"""The overlay-CSR store: a mutable, array-backed view of one data graph.

The compiled CSR snapshots of :mod:`repro.graph.csr` are immutable — before
this store existed, every ``add_edge``/``remove_edge`` invalidated the
snapshot and the CSR evaluation stack paid a recompile (or fell back to the
adjacency dicts) on the next read.  ``OverlayCsrStore`` keeps the flat-array
base *and* follows mutations at O(delta) cost:

* the **base** is an ordinary :class:`~repro.graph.csr.CompiledGraph`;
* mutations land in per-colour **overlays** — net added/removed edge sets per
  node and direction, built by replaying the graph's mutation journal
  (:meth:`DataGraph.journal_since`) on :meth:`sync`;
* reads are **merged**: a colour nobody touched since the base was compiled
  (``is_clean``) is served straight from the base arrays (full CSR speed,
  warm engine memos), a dirty colour reads the base row adjusted by the
  overlay deltas;
* once the overlay grows past a planner-tunable fraction of the base
  (:data:`~repro.session.defaults.OVERLAY_COMPACTION_FRACTION`), the store
  **compacts**: the overlay is folded into a fresh base compiled with the
  old one as a donor (untouched per-colour layers are adopted verbatim —
  the PR 2 recompile path), and the overlays reset to empty.

Node *removals* always compact: a removed node's attribute views in the base
would go stale, and the compaction restores the invariant that every base
node is live — which is what makes the memoised predicate scans of
:meth:`matching_nodes` sound between compactions.

One overlay store exists per graph (``graph.overlay_store()``); every
CSR-engine matcher reads through it, so an interleaved read/write stream
costs O(delta) per mutation instead of a recompile
(``benchmarks/test_bench_overlay.py`` gates the win).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from repro.exceptions import GraphError
from repro.kernels import active_kernel_name
from repro.storage.base import GraphStore, NodeId, bfs_block_frontier, predicate_check

#: Overlay fraction of the base edge count above which the store compacts.
#: Imported lazily from session defaults at construction so the storage
#: package stays importable without the session machinery.
_DEFAULTS = None


def _default_policy():
    global _DEFAULTS
    if _DEFAULTS is None:
        from repro.session.defaults import (
            OVERLAY_COMPACTION_FRACTION,
            OVERLAY_MIN_COMPACTION_EDGES,
        )

        _DEFAULTS = (OVERLAY_COMPACTION_FRACTION, OVERLAY_MIN_COMPACTION_EDGES)
    return _DEFAULTS


class OverlayCsrStore(GraphStore):
    """Immutable CSR base + per-colour edge overlays for one data graph.

    Parameters
    ----------
    graph:
        The owning :class:`~repro.graph.data_graph.DataGraph`.
    compaction_fraction:
        Compact once the net overlay edge count exceeds this fraction of the
        base's edge count.  ``0.0`` compacts on every mutation (the
        recompile-per-update baseline of the overlay benchmark).
    min_compaction_edges:
        Absolute floor below which the fraction test is not applied — tiny
        overlays are never worth a recompile on non-trivial graphs.
    """

    kind = "overlay-csr"

    def __init__(
        self,
        graph,
        compaction_fraction: Optional[float] = None,
        min_compaction_edges: Optional[int] = None,
    ):
        default_fraction, default_min = _default_policy()
        self._graph = graph
        # Subscribe to the mutation journal; history before this point is
        # absent, which the first sync treats as a truncation (compaction).
        graph.store.enable_journal()
        self.compaction_fraction = (
            default_fraction if compaction_fraction is None else compaction_fraction
        )
        self.min_compaction_edges = (
            default_min if min_compaction_edges is None else min_compaction_edges
        )
        self._fraction_pinned = compaction_fraction is not None
        self._base = None
        self._synced_version = -1
        # Net overlay deltas: [direction][node][color] -> set of neighbours,
        # direction 0 = forward (out-edges), 1 = reverse (in-edges).
        self._added: List[Dict[NodeId, Dict[str, Set[NodeId]]]] = [{}, {}]
        self._removed: List[Dict[NodeId, Dict[str, Set[NodeId]]]] = [{}, {}]
        # color -> net overlay edge count; 0 means the base layer for that
        # colour equals the live adjacency (clean).
        self._color_ops: Dict[str, int] = {}
        self._overlay_edges = 0
        # Nodes created since the base was compiled (absent from its index).
        self._new_nodes: Set[NodeId] = set()
        # Refcounted pinned snapshots, shared per graph version (MVCC reads).
        self._pins: Dict[int, Any] = {}
        # Lifetime counters, surfaced by overlay_stats().
        self.compactions = 0
        self.syncs = 0
        self.replayed_ops = 0
        self.snapshots_pinned = 0

    # -- properties --------------------------------------------------------------

    @property
    def graph(self):
        return self._graph

    def base(self):
        """The current base :class:`~repro.graph.csr.CompiledGraph` (synced)."""
        self.sync()
        return self._base

    @property
    def overlay_edges(self) -> int:
        """Net overlay edge count (adds plus removes surviving cancellation)."""
        return self._overlay_edges

    def dirty_colors(self) -> Set[str]:
        """Colours whose base layer has diverged from the live adjacency."""
        return {color for color, ops in self._color_ops.items() if ops}

    def is_clean(self, color: Optional[str] = None) -> bool:
        """True when reads of ``color`` can be served from the base arrays.

        ``None`` asks about the wildcard (any-colour) layer, which is clean
        only when the whole overlay is empty.  Callers must :meth:`sync`
        first.  A node created since the base was compiled never has edges
        of a clean colour (its edges would have dirtied them), so clean
        colours are also safe for whole-expression memos.
        """
        if color is None:
            return self._overlay_edges == 0
        return not self._color_ops.get(color)

    def in_base(self, node: NodeId) -> bool:
        """True when ``node`` has an index in the current base snapshot."""
        return self._base is not None and self._base.has_node(node)

    # -- synchronisation ---------------------------------------------------------

    def sync(self) -> None:
        """Replay the graph's journal into the overlays (O(delta)).

        Falls back to :meth:`compact` when there is no base yet, when the
        journal was truncated past our sync point, or when a node removal is
        replayed (the base must never contain dead nodes — see the module
        docstring).  After a successful replay the compaction policy runs.
        """
        graph = self._graph
        if self._base is not None and self._synced_version == graph.version:
            return
        self.syncs += 1
        if self._base is None:
            self._compact()
            return
        entries = graph.journal_since(self._synced_version)
        if entries is None:
            self._compact()
            return
        for version, op, a, b, color in entries:
            if op == "+e":
                self._apply_edge(a, b, color, insert=True)
            elif op == "-e":
                self._apply_edge(a, b, color, insert=False)
            elif op == "+n":
                if not self._base.has_node(a):
                    self._new_nodes.add(a)
            else:  # "-n": the base would keep a dead node; fold and restart.
                self._compact()
                return
            self.replayed_ops += 1
        self._synced_version = graph.version
        if self._should_compact():
            self._compact()

    def _apply_edge(self, source: NodeId, target: NodeId, color: str, insert: bool) -> None:
        """Record one edge change, cancelling against the opposite overlay."""
        opposite = self._removed if insert else self._added
        mine = self._added if insert else self._removed
        cancelled = self._discard(opposite, source, target, color)
        if cancelled:
            self._color_ops[color] -= 1
            self._overlay_edges -= 1
            return
        mine[0].setdefault(source, {}).setdefault(color, set()).add(target)
        mine[1].setdefault(target, {}).setdefault(color, set()).add(source)
        self._color_ops[color] = self._color_ops.get(color, 0) + 1
        self._overlay_edges += 1

    @staticmethod
    def _discard(overlay, source: NodeId, target: NodeId, color: str) -> bool:
        bucket = overlay[0].get(source, {}).get(color)
        if bucket is None or target not in bucket:
            return False
        bucket.discard(target)
        overlay[1][target][color].discard(source)
        return True

    def _should_compact(self) -> bool:
        if not self._overlay_edges:
            return False
        if self.compaction_fraction <= 0:
            # The documented recompile-per-mutation mode: any overlay at all
            # folds immediately, the absolute floor notwithstanding.
            return True
        threshold = max(
            self.min_compaction_edges,
            self.compaction_fraction * max(1, self._base.num_edges),
        )
        return self._overlay_edges >= threshold

    def configure_compaction(self, fraction: float) -> None:
        """Pin the compaction fraction of this (graph-shared) store.

        The store is shared by every session and matcher on the graph, so a
        later caller asking for a *different* explicit policy raises
        :class:`ValueError` instead of silently clobbering the first one
        (last-writer-wins on a shared knob is how one session quietly puts
        another into recompile-per-mutation mode).  Asking for the value
        already pinned is a no-op; mutating :attr:`compaction_fraction`
        directly remains available for tests and benchmarks that own the
        graph outright.
        """
        if fraction < 0:
            raise ValueError("compaction fraction must be >= 0")
        if self._fraction_pinned and fraction != self.compaction_fraction:
            raise ValueError(
                f"overlay store already configured with compaction_fraction="
                f"{self.compaction_fraction} (shared per graph); refusing to "
                f"reconfigure to {fraction}"
            )
        self.compaction_fraction = fraction
        self._fraction_pinned = True

    def compact(self) -> None:
        """Fold the overlay into a fresh base snapshot now (public hook)."""
        self._compact()

    # -- snapshot pinning --------------------------------------------------------

    def pin_snapshot(self, version: Optional[int] = None):
        """Pin an immutable :class:`~repro.storage.snapshot.StoreSnapshot`.

        Syncs first, then captures (or re-references) the snapshot of the
        graph's *current* version: pins at the same version share one
        refcounted snapshot object.  The snapshot's base is held by
        reference — a later compaction rebinds this store's base without
        touching the pinned object — and its overlay slice is a private deep
        copy, so nothing the store does afterwards can reach a reader.

        ``version`` may assert the expected version (a reader that planned
        against version *v* can demand exactly *v*); pinning a version other
        than the current one raises
        :class:`~repro.exceptions.SnapshotError`, because no history is
        kept.  Call from the owner (writer) thread only; *reading* the
        returned snapshot is thread-safe.
        """
        from repro.exceptions import SnapshotError
        from repro.storage.snapshot import StoreSnapshot

        self.sync()
        current = self._graph.version
        if version is not None and version != current:
            raise SnapshotError(
                f"cannot pin version {version}: the store is at version "
                f"{current} and keeps no history"
            )
        snapshot = self._pins.get(current)
        if snapshot is None:
            snapshot = StoreSnapshot(self)
            self._pins[current] = snapshot
        else:
            snapshot.pins += 1
        self.snapshots_pinned += 1
        return snapshot

    def release_snapshot(self, snapshot) -> None:
        """Drop one pin reference; the snapshot is forgotten at refcount zero.

        Releasing is idempotent-safe only down to zero — callers release
        exactly once per pin (the session snapshot wrapper enforces this).
        """
        snapshot.pins -= 1
        if snapshot.pins <= 0 and self._pins.get(snapshot.version) is snapshot:
            del self._pins[snapshot.version]

    def _compact(self) -> None:
        # Imported lazily to avoid the import cycle
        # storage.overlay -> graph.csr -> graph.data_graph -> storage.
        from repro.graph.csr import compiled_snapshot

        graph = self._graph
        # Recompiles go through the shared per-graph snapshot cache, so the
        # store's base and ad-hoc snapshot users (general-regex evaluation,
        # graph simulation, warm-up hooks) compile once between them.  The
        # retiring snapshot donates its untouched per-colour layers and
        # (node set and attrs permitting) its predicate-scan memo — the
        # compaction cost is proportional to the touched colours, not the
        # whole graph.
        self._base = compiled_snapshot(graph)
        self._added = [{}, {}]
        self._removed = [{}, {}]
        self._color_ops = {}
        self._overlay_edges = 0
        self._new_nodes = set()
        self._synced_version = graph.version
        self.compactions += 1

    # -- merged reads ------------------------------------------------------------

    def _base_neighbor_ids(self, node: NodeId, color: str, reverse: bool) -> Optional[Set[NodeId]]:
        base = self._base
        if not base.has_node(node):
            return None
        color_id = base.color_id(color)
        if color_id is None:
            return None
        index = base.node_index(node)
        ids = base.ids
        return {ids[j] for j in base.layer(color_id, reverse).neighbors(index)}

    def merged_neighbors(self, node: NodeId, color: str, reverse: bool = False) -> Set[NodeId]:
        """The live adjacency of one (node, colour) row: base ± overlay.

        The base row at compile time, minus the edges removed since, plus
        the edges added since — identical to the authoritative dict row
        (asserted by ``tests/test_store_parity.py``) without touching it.
        """
        direction = 1 if reverse else 0
        result = self._base_neighbor_ids(node, color, reverse) or set()
        removed = self._removed[direction].get(node)
        if removed:
            result -= removed.get(color, set())
        added = self._added[direction].get(node)
        if added:
            result |= added.get(color, set())
        return result

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._merged(node, color, reverse=False)

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._merged(node, color, reverse=True)

    def _merged(self, node: NodeId, color: Optional[str], reverse: bool) -> Set[NodeId]:
        self.sync()
        if not self._graph.has_node(node):
            # Parity with DictStore: a typo'd node is an error on every
            # backend, never a silent "no neighbours".
            raise GraphError(f"node {node!r} does not exist")
        if color is not None:
            if self.is_clean(color):
                return self._base_neighbor_ids(node, color, reverse) or set()
            return self.merged_neighbors(node, color, reverse)
        return self._merged_any(node, reverse)

    def _row_colors(self, node: NodeId, reverse: bool) -> Set[str]:
        colors: Set[str] = set()
        base = self._base
        if base.has_node(node):
            index = base.node_index(node)
            colors.update(
                c for k, c in enumerate(base.colors) if base.layer(k, reverse).mask[index]
            )
        direction = 1 if reverse else 0
        added = self._added[direction].get(node)
        if added:
            colors.update(c for c, bucket in added.items() if bucket)
        return colors

    # -- frontier expansion ------------------------------------------------------

    def frontier(
        self,
        starts: Iterable[NodeId],
        color: Optional[str],
        bound: Optional[int],
        reverse: bool = False,
    ) -> Set[NodeId]:
        """Merged multi-source bounded BFS (the dirty-colour read path).

        Clean colours are normally expanded by a
        :class:`~repro.matching.csr_engine.CsrEngine` over :meth:`base`
        (memoised, index space) by the storage adapter; this method is the
        read-through path that merges base rows with the overlay deltas and
        is valid for any colour.
        """
        self.sync()
        if color is not None and self.is_clean(color):
            neighbors = lambda node: self._base_neighbor_ids(node, color, reverse) or set()  # noqa: E731
        elif color is not None:
            neighbors = lambda node: self.merged_neighbors(node, color, reverse)  # noqa: E731
        else:
            neighbors = lambda node: self._merged_any(node, reverse)  # noqa: E731
        return bfs_block_frontier(neighbors, starts, bound)

    def _merged_any(self, node: NodeId, reverse: bool) -> Set[NodeId]:
        if self._overlay_edges == 0 and self._base.has_node(node):
            base = self._base
            index = base.node_index(node)
            ids = base.ids
            from repro.graph.csr import ANY_COLOR

            return {ids[j] for j in base.layer(ANY_COLOR, reverse).neighbors(index)}
        result: Set[NodeId] = set()
        for c in self._row_colors(node, reverse):
            result |= self.merged_neighbors(node, c, reverse)
        return result

    def closure(
        self,
        starts: Iterable[NodeId],
        colors: Optional[Iterable[str]] = None,
        reverse: bool = True,
    ) -> Set[NodeId]:
        self.sync()
        return super().closure(starts, colors, reverse)

    # -- predicate scans ---------------------------------------------------------

    def matching_nodes(self, predicate: Any) -> List[NodeId]:
        """Node ids whose attributes satisfy ``predicate``.

        Base nodes come from the base snapshot's memoised predicate scan —
        sound between compactions because node removals always compact, so
        every base node is live and its captured attribute views track the
        graph; attribute updates are absorbed by refreshing the base's scan
        memo.  Nodes created since the base are scanned live and appended.
        """
        self.sync()
        graph = self._graph
        if predicate is None:
            return list(graph.nodes())
        base = self._base
        if graph.attrs_version != base.source_attrs_version:
            # Every base node is live (see above), so the snapshot's lazy
            # guard against topology-stale rescans does not apply here.
            base.refresh_attribute_scans(graph.attrs_version)
        result = base.matching_ids(predicate)
        if self._new_nodes:
            check = predicate_check(predicate)
            attributes = graph.attributes
            result.extend(node for node in self._new_nodes if check(attributes(node)))
        return result

    # -- bookkeeping -------------------------------------------------------------

    @property
    def has_base(self) -> bool:
        """True once a base snapshot has been compiled (first read)."""
        return self._base is not None

    def overlay_stats(self) -> Dict[str, Any]:
        """Occupancy and maintenance statistics.

        Syncs first when a base exists (O(delta)); a store nobody has read
        through yet reports zeros instead of forcing the one-off base
        compile just to be inspected.
        """
        if self._base is None:
            return {
                "store": self.kind,
                "kernel": active_kernel_name(),
                "base_nodes": 0,
                "base_edges": 0,
                "overlay_edges": 0,
                "overlay_fraction": 0.0,
                "dirty_colors": 0,
                "new_nodes": 0,
                "compactions": self.compactions,
                "syncs": self.syncs,
                "replayed_ops": self.replayed_ops,
                "compaction_fraction": self.compaction_fraction,
                "pinned_snapshots": len(self._pins),
                "snapshots_pinned": self.snapshots_pinned,
            }
        self.sync()
        base_edges = self._base.num_edges
        return {
            "store": self.kind,
            "kernel": active_kernel_name(),
            "base_nodes": self._base.num_nodes,
            "base_edges": base_edges,
            "overlay_edges": self._overlay_edges,
            "overlay_fraction": self._overlay_edges / base_edges if base_edges else 0.0,
            "dirty_colors": len(self.dirty_colors()),
            "new_nodes": len(self._new_nodes),
            "compactions": self.compactions,
            "syncs": self.syncs,
            "replayed_ops": self.replayed_ops,
            "compaction_fraction": self.compaction_fraction,
            "pinned_snapshots": len(self._pins),
            "snapshots_pinned": self.snapshots_pinned,
        }

    def __repr__(self) -> str:
        return (
            f"OverlayCsrStore(graph={self._graph.name!r}, "
            f"overlay_edges={self._overlay_edges}, compactions={self.compactions})"
        )
