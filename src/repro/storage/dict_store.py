"""The authoritative adjacency store behind every :class:`DataGraph`.

``DictStore`` owns what used to be the graph's private topology state — the
forward/reverse dict-of-set adjacency indexed by colour, the colour alphabet,
the edge count and the topology version counters — plus the **mutation
journal** that derived stores (:class:`~repro.storage.overlay.OverlayCsrStore`)
replay to stay synchronised in O(delta) instead of recompiling per mutation.

:class:`~repro.graph.data_graph.DataGraph` is a thin facade over this store:
it keeps the node-attribute table (the paper's ``f_A``) and delegates every
topology operation here.  Mutations are applied synchronously, so the dict
store is always current and is the parity reference every other backend is
differential-tested against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.storage.base import GraphStore, NodeId, bfs_block_frontier

#: Journal entry: ``(version-after-the-bump, op, a, b, color)`` where ``op``
#: is ``"+e"`` / ``"-e"`` (edge insert / delete, ``a``/``b`` the endpoints),
#: ``"+n"`` (node created, ``a`` the node) or ``"-n"`` (node removed).
JournalEntry = Tuple[int, str, NodeId, Optional[NodeId], Optional[str]]

#: How many journal entries are retained.  A derived store that fell further
#: behind than this replays nothing and recompiles from scratch instead —
#: the journal bounds memory, losing it only costs one compaction.
JOURNAL_CAPACITY = 4096

#: Old entries are dropped in chunks of this size so the front-trim of the
#: journal list stays O(1) amortised per mutation.
_JOURNAL_TRIM_CHUNK = 256


class DictStore(GraphStore):
    """Dict-of-set adjacency, version counters and the mutation journal.

    The store is deliberately attribute-free: node attributes (and their
    ``attrs_version``) stay on the owning :class:`DataGraph` — predicates
    are an attribute concern, topology is a storage concern.
    """

    kind = "dict"

    __slots__ = (
        "_out",
        "_in",
        "_colors",
        "_num_edges",
        "_version",
        "_edges_version",
        "_color_versions",
        "_journal",
        "_journal_floor",
        "_journaling",
    )

    def __init__(self) -> None:
        # _out[u][color] = set of successors via edges of that colour
        self._out: Dict[NodeId, Dict[str, Set[NodeId]]] = {}
        self._in: Dict[NodeId, Dict[str, Set[NodeId]]] = {}
        self._colors: Set[str] = set()
        self._num_edges = 0
        # Topology version counters (see the DataGraph properties for the
        # exact invalidation contract each one carries).
        self._version = 0
        self._edges_version = 0
        self._color_versions: Dict[str, int] = {}
        # While journaling, exactly one entry is appended per version bump,
        # so the entry for version V sits at index ``V - _journal_floor - 1``
        # — journal_since is an O(delta) slice, never a scan.
        self._journal: List[JournalEntry] = []
        # The version *before* the oldest retained journal entry: asking for
        # changes since an older version means the journal was truncated.
        self._journal_floor = 0
        # Recording starts only when a derived store subscribes
        # (enable_journal) — a graph that never builds an overlay store pays
        # one boolean check per mutation and retains no history.
        self._journaling = False

    # -- version counters --------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def edges_version(self) -> int:
        return self._edges_version

    def color_version(self, color: str) -> int:
        return self._color_versions.get(color, 0)

    def _record(self, op: str, a: NodeId, b: Optional[NodeId] = None, color: Optional[str] = None) -> None:
        if not self._journaling:
            return
        self._journal.append((self._version, op, a, b, color))
        excess = len(self._journal) - JOURNAL_CAPACITY
        if excess >= _JOURNAL_TRIM_CHUNK:
            self._journal_floor = self._journal[excess - 1][0]
            del self._journal[:excess]

    def enable_journal(self) -> None:
        """Start recording mutations (idempotent).

        Called when the first derived store subscribes; history before this
        point is simply absent, which :meth:`journal_since` reports as a
        truncation — the subscriber's first sync compacts, exactly as if the
        journal had been outgrown.
        """
        if not self._journaling:
            self._journaling = True
            self._journal_floor = self._version

    def journal_since(self, version: int) -> Optional[List[JournalEntry]]:
        """Journal entries after ``version``, or ``None`` if truncated away.

        ``None`` tells a derived store its sync point fell off the bounded
        journal (or predates recording): the only sound move is a full
        recompile (compaction).
        """
        if not self._journaling or version < self._journal_floor:
            return None
        # One entry per version bump (see __init__), so the suffix after
        # ``version`` starts at a computed index — O(len(result)), not
        # O(journal length).
        start = version - self._journal_floor
        return self._journal[start:] if start > 0 else list(self._journal)

    # -- mutation (called by the DataGraph facade) -------------------------------

    def add_node(self, node: NodeId) -> None:
        """Create the adjacency rows for a brand-new node (caller checks)."""
        self._out[node] = {}
        self._in[node] = {}
        self._version += 1
        self._record("+n", node)

    def add_edge(self, source: NodeId, target: NodeId, color: str) -> bool:
        """Insert one coloured edge; ``False`` if it already existed."""
        bucket = self._out[source].setdefault(color, set())
        if target in bucket:
            return False
        bucket.add(target)
        self._in[target].setdefault(color, set()).add(source)
        self._colors.add(color)
        self._num_edges += 1
        self._version += 1
        self._edges_version += 1
        self._color_versions[color] = self._color_versions.get(color, 0) + 1
        self._record("+e", source, target, color)
        return True

    def remove_edge(self, source: NodeId, target: NodeId, color: str) -> None:
        """Remove one coloured edge; raises :class:`GraphError` if absent."""
        try:
            self._out[source][color].remove(target)
            self._in[target][color].remove(source)
        except KeyError as exc:
            raise GraphError(f"edge {source}-{color}->{target} does not exist") from exc
        self._num_edges -= 1
        self._version += 1
        self._edges_version += 1
        self._color_versions[color] = self._color_versions.get(color, 0) + 1
        if not self._out[source][color]:
            del self._out[source][color]
        if not self._in[target][color]:
            del self._in[target][color]
        self._record("-e", source, target, color)

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all incident edges (caller checks existence).

        Every incident edge removal bumps ``edges_version`` and its colour's
        version through :meth:`remove_edge`; the node removal itself bumps
        ``edges_version`` once more *unconditionally*, so state keyed on the
        node universe (store overlays, wildcard memos) can never survive a
        removal of an isolated node by accident.
        """
        for color, targets in list(self._out[node].items()):
            for target in list(targets):
                self.remove_edge(node, target, color)
        for color, sources in list(self._in[node].items()):
            for source in list(sources):
                self.remove_edge(source, node, color)
        del self._out[node]
        del self._in[node]
        self._version += 1
        self._edges_version += 1
        self._record("-n", node)

    # -- reads -------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def colors(self) -> Set[str]:
        return self._colors

    def has_edge(self, source: NodeId, target: NodeId, color: Optional[str] = None) -> bool:
        table = self._out.get(source)
        if table is None:
            return False
        if color is not None:
            return target in table.get(color, ())
        return any(target in targets for targets in table.values())

    def adjacency(self) -> Iterator[Tuple[NodeId, Mapping[str, Set[NodeId]]]]:
        return iter(self._out.items())

    def out_row(self, node: NodeId) -> Mapping[str, Set[NodeId]]:
        """One node's live ``{colour: successor set}`` row (read-only use).

        The zero-copy accessor behind :meth:`DataGraph.out_edges`; callers
        must not mutate the returned buckets.
        """
        try:
            return self._out[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} does not exist") from exc

    def _neighbors(self, node: NodeId, color: Optional[str], reverse: bool) -> Set[NodeId]:
        table = (self._in if reverse else self._out).get(node)
        if table is None:
            raise GraphError(f"node {node!r} does not exist")
        if color is not None:
            return set(table.get(color, ()))
        result: Set[NodeId] = set()
        for bucket in table.values():
            result |= bucket
        return result

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._neighbors(node, color, reverse=False)

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._neighbors(node, color, reverse=True)

    def out_degree(self, node: NodeId) -> int:
        return sum(len(t) for t in self._out.get(node, {}).values())

    def in_degree(self, node: NodeId) -> int:
        return sum(len(s) for s in self._in.get(node, {}).values())

    def successor_colors(self, node: NodeId) -> Set[str]:
        return {c for c, targets in self._out.get(node, {}).items() if targets}

    def predecessor_colors(self, node: NodeId) -> Set[str]:
        return {c for c, sources in self._in.get(node, {}).items() if sources}

    # -- frontier expansion ------------------------------------------------------

    def frontier(
        self,
        starts: Iterable[NodeId],
        color: Optional[str],
        bound: Optional[int],
        reverse: bool = False,
    ) -> Set[NodeId]:
        """Multi-source bounded BFS over the adjacency dicts.

        The one-atom block expansion every engine shares
        (:func:`~repro.storage.base.bfs_block_frontier`): nodes at positive
        distance ``1 … bound`` from any start, a start included exactly when
        re-reached through a non-empty path.
        """
        table = self._in if reverse else self._out
        empty: Dict[str, Set[NodeId]] = {}

        if color is None:
            def neighbors(node: NodeId) -> Iterable[NodeId]:
                row = table.get(node, empty)
                return (nxt for bucket in row.values() for nxt in bucket)
        else:
            def neighbors(node: NodeId) -> Iterable[NodeId]:
                return table.get(node, empty).get(color, ())

        return bfs_block_frontier(neighbors, starts, bound)
