"""Pinned storage snapshots: the MVCC read surface of the overlay store.

A :class:`StoreSnapshot` captures one :class:`~repro.storage.overlay.OverlayCsrStore`
at a single graph version: the CSR **base by reference** (compaction rebinds
the store's base to a fresh object and never mutates the old one, so a pinned
base outlives any number of compactions), a **deep copy of the overlay
slices** (the store mutates them in place on every sync — the copy is bounded
by the compaction fraction, so it stays O(delta)), and a **copy of the
attribute table** (predicate scans must see the pinned attributes, not the
live ones).

The snapshot is itself a :class:`~repro.storage.base.GraphStore` — merged
reads work exactly like the live overlay store minus the journal replay — and
it is **immutable**: once built, reads are safe from any thread without
locks.  That is the property the serving layer leans on: the writer keeps
appending to the journal (and the store keeps syncing and compacting) while
any number of readers evaluate against their pinned snapshots.

:class:`SnapshotGraph` wraps a snapshot in a read-only
:class:`~repro.graph.data_graph.DataGraph` facade (duck-typed: nodes,
attributes, merged adjacency, frozen version counters), which is what lets an
unmodified dict-engine :class:`~repro.matching.paths.PathMatcher` — and the
whole RQ/PQ fixpoint stack above it — evaluate at the pinned version with no
snapshot-specific branches.

Pins are refcounted and shared per version by the owning store
(:meth:`OverlayCsrStore.pin_snapshot` / :meth:`release_snapshot`); the
thread contract is: pin/release/mutate from the owner thread, read from
anywhere.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

from repro.exceptions import GraphError
from repro.storage.base import GraphStore, NodeId, bfs_block_frontier, scan_nodes


def _copy_overlay(overlay) -> List[Dict[NodeId, Dict[str, Set[NodeId]]]]:
    """Deep-copy one [direction][node][color] -> neighbour-set overlay."""
    return [
        {
            node: {color: set(bucket) for color, bucket in colors.items() if bucket}
            for node, colors in direction.items()
        }
        for direction in overlay
    ]


class StoreSnapshot(GraphStore):
    """One immutable (base, overlay-slice, attribute-table) triple.

    Built by :meth:`OverlayCsrStore.pin_snapshot` after a sync, so the
    captured state equals the live graph at :attr:`version`.  All reads are
    lock-free; the object never changes after construction.
    """

    kind = "overlay-csr-snapshot"

    def __init__(self, store):
        graph = store.graph
        # By reference: compaction rebinds the store's base, never mutates it.
        self._base = store._base
        self._added = _copy_overlay(store._added)
        self._removed = _copy_overlay(store._removed)
        self._new_nodes = frozenset(store._new_nodes)
        self._overlay_edges = store._overlay_edges
        # The attribute table at pin time (values shared, rows copied): the
        # live table mutates under add_node(**attrs) / remove_node.
        self._attrs: Dict[NodeId, Dict[str, Any]] = {
            node: dict(view) for node, view in graph.attribute_views().items()
        }
        self._attr_views: Dict[NodeId, Any] = {
            node: MappingProxyType(attrs) for node, attrs in self._attrs.items()
        }
        self.name = f"{graph.name}@v{graph.version}"
        self.version = graph.version
        self.attrs_version = graph.attrs_version
        self.edges_version = graph.edges_version
        self._color_versions = {c: graph.color_version(c) for c in graph.colors}
        self.colors = frozenset(graph.colors)
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        #: Refcount managed by the owning store's pin registry.
        self.pins = 1

    # -- node membership ---------------------------------------------------------

    def has_node(self, node: NodeId) -> bool:
        return node in self._attrs

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._attrs)

    def attributes(self, node: NodeId):
        try:
            return self._attr_views[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} does not exist") from exc

    def color_version(self, color: str) -> int:
        return self._color_versions.get(color, 0)

    # -- merged reads (mirroring OverlayCsrStore, minus sync) --------------------

    def _base_neighbor_ids(self, node: NodeId, color: str, reverse: bool) -> Optional[Set[NodeId]]:
        base = self._base
        if not base.has_node(node):
            return None
        color_id = base.color_id(color)
        if color_id is None:
            return None
        index = base.node_index(node)
        ids = base.ids
        return {ids[j] for j in base.layer(color_id, reverse).neighbors(index)}

    def merged_neighbors(self, node: NodeId, color: str, reverse: bool = False) -> Set[NodeId]:
        direction = 1 if reverse else 0
        result = self._base_neighbor_ids(node, color, reverse) or set()
        removed = self._removed[direction].get(node)
        if removed:
            result -= removed.get(color, set())
        added = self._added[direction].get(node)
        if added:
            result |= added.get(color, set())
        return result

    def _row_colors(self, node: NodeId, reverse: bool) -> Set[str]:
        colors: Set[str] = set()
        base = self._base
        if base.has_node(node):
            index = base.node_index(node)
            colors.update(
                c for k, c in enumerate(base.colors) if base.layer(k, reverse).mask[index]
            )
        direction = 1 if reverse else 0
        added = self._added[direction].get(node)
        if added:
            colors.update(c for c, bucket in added.items() if bucket)
        return colors

    def _merged_any(self, node: NodeId, reverse: bool) -> Set[NodeId]:
        if self._overlay_edges == 0 and self._base.has_node(node):
            from repro.graph.csr import ANY_COLOR

            base = self._base
            index = base.node_index(node)
            ids = base.ids
            return {ids[j] for j in base.layer(ANY_COLOR, reverse).neighbors(index)}
        result: Set[NodeId] = set()
        for c in self._row_colors(node, reverse):
            result |= self.merged_neighbors(node, c, reverse)
        return result

    def _merged(self, node: NodeId, color: Optional[str], reverse: bool) -> Set[NodeId]:
        if node not in self._attrs:
            raise GraphError(f"node {node!r} does not exist")
        if color is not None:
            return self.merged_neighbors(node, color, reverse)
        return self._merged_any(node, reverse)

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._merged(node, color, reverse=False)

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._merged(node, color, reverse=True)

    def frontier(
        self,
        starts: Iterable[NodeId],
        color: Optional[str],
        bound: Optional[int],
        reverse: bool = False,
    ) -> Set[NodeId]:
        if color is not None:
            neighbors = lambda node: self.merged_neighbors(node, color, reverse)  # noqa: E731
        else:
            neighbors = lambda node: self._merged_any(node, reverse)  # noqa: E731
        return bfs_block_frontier(neighbors, starts, bound)

    # -- predicate scans ---------------------------------------------------------

    def matching_nodes(self, predicate: Any) -> List[NodeId]:
        """Node ids whose *pinned* attributes satisfy ``predicate``."""
        return scan_nodes(predicate, self._attrs, self.attributes)

    # -- bookkeeping -------------------------------------------------------------

    def overlay_stats(self) -> Dict[str, Any]:
        return {
            "store": self.kind,
            "version": self.version,
            "base_nodes": self._base.num_nodes,
            "base_edges": self._base.num_edges,
            "overlay_edges": self._overlay_edges,
            "new_nodes": len(self._new_nodes),
            "pins": self.pins,
        }

    def __repr__(self) -> str:
        return (
            f"StoreSnapshot(version={self.version}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, overlay_edges={self._overlay_edges}, "
            f"pins={self.pins})"
        )


class SnapshotGraph:
    """A read-only :class:`DataGraph` facade over one :class:`StoreSnapshot`.

    Duck-typed to the surface the dict-engine evaluation stack reads
    (:class:`~repro.storage.adapter.DictEngineAdapter`, the general-regex
    NFA-product evaluator and :func:`~repro.graph.stats.compute_stats`):
    node iteration, attribute views, merged adjacency and the version
    counters — all frozen at the pinned version, so every matcher memo keyed
    on them stays valid for the facade's whole lifetime.  There are no
    mutation methods: the snapshot *is* the graph at that version.
    """

    def __init__(self, snapshot: StoreSnapshot):
        self._snapshot = snapshot
        self.name = snapshot.name

    # -- storage layer -----------------------------------------------------------

    @property
    def store(self) -> StoreSnapshot:
        """The pinned snapshot (closures and frontier expansion read here)."""
        return self._snapshot

    # -- frozen version counters -------------------------------------------------

    @property
    def version(self) -> int:
        return self._snapshot.version

    @property
    def attrs_version(self) -> int:
        return self._snapshot.attrs_version

    @property
    def edges_version(self) -> int:
        return self._snapshot.edges_version

    def color_version(self, color: str) -> int:
        return self._snapshot.color_version(color)

    # -- inspection --------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._snapshot.num_nodes

    @property
    def num_edges(self) -> int:
        return self._snapshot.num_edges

    @property
    def colors(self):
        return self._snapshot.colors

    def nodes(self) -> Iterator[NodeId]:
        return self._snapshot.nodes()

    def has_node(self, node: NodeId) -> bool:
        return self._snapshot.has_node(node)

    def attributes(self, node: NodeId):
        return self._snapshot.attributes(node)

    def get_attribute(self, node: NodeId, name: str, default: Any = None) -> Any:
        return self.attributes(node).get(name, default)

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._snapshot.successors(node, color)

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._snapshot.predecessors(node, color)

    def out_edges(self, node: NodeId):
        """Iterate edges leaving ``node`` (the general-regex read path)."""
        from repro.graph.data_graph import Edge

        snapshot = self._snapshot
        for color in snapshot._row_colors(node, reverse=False):
            for target in snapshot.merged_neighbors(node, color):
                yield Edge(node, target, color)

    def edges(self):
        """Iterate all pinned edges (drives ``compute_stats`` on the facade)."""
        for node in self.nodes():
            yield from self.out_edges(node)

    def out_degree(self, node: NodeId) -> int:
        snapshot = self._snapshot
        return sum(
            len(snapshot.merged_neighbors(node, color))
            for color in snapshot._row_colors(node, reverse=False)
        )

    def in_degree(self, node: NodeId) -> int:
        snapshot = self._snapshot
        return sum(
            len(snapshot.merged_neighbors(node, color, reverse=True))
            for color in snapshot._row_colors(node, reverse=True)
        )

    def __contains__(self, node: NodeId) -> bool:
        return self._snapshot.has_node(node)

    def __len__(self) -> int:
        return self._snapshot.num_nodes

    def __repr__(self) -> str:
        return (
            f"SnapshotGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
