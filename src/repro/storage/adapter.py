"""Storage adapters: the one place that branches on the evaluation backend.

:class:`~repro.matching.paths.PathMatcher` exposes the expansion surface the
RQ/PQ fixpoints drive (``atom_targets`` … ``edge_pairs``).  Every method used
to branch on ``engine == "csr"`` inline; those branches now live here, behind
three adapters sharing one interface:

* :class:`DictEngineAdapter` — expansion over the authoritative
  :class:`~repro.storage.dict_store.DictStore` (or the caller's distance
  matrix), with the classic version-tagged BFS memos;
* :class:`OverlayCsrAdapter` — expansion through the graph's
  :class:`~repro.storage.overlay.OverlayCsrStore`: colours untouched since
  the base snapshot run on the memoised flat-array
  :class:`~repro.matching.csr_engine.CsrEngine` (rebuilt, with donor cache
  promotion, only when the store compacts), dirty colours run as merged
  read-through frontiers with per-colour version-tagged memos;
* :class:`PartitionedAdapter` — expansion through the graph's sharded
  :class:`~repro.storage.partition.PartitionedStore`: every frontier is a
  cross-shard exchange over per-shard CSR kernels, memoised under the same
  per-colour version tags as the dict engine.

The adapters are deliberately the *only* modules that know both worlds; the
fixpoint bodies above them are engine-free (asserted by
``tests/test_store_parity.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.storage.base import scan_nodes

NodeId = Hashable


def make_adapter(matcher):
    """The storage adapter for one resolved :class:`PathMatcher`."""
    if matcher.engine == "csr":
        return OverlayCsrAdapter(matcher)
    if matcher.engine == "partitioned":
        return PartitionedAdapter(matcher)
    return DictEngineAdapter(matcher)


class DictEngineAdapter:
    """Expansion over the adjacency dicts (and the optional distance matrix).

    This is the parity reference: every other adapter must return exactly
    these answers.  BFS runs are memoised per ``(start, colour, direction)``
    in the matcher's LRU caches, tagged with the graph's per-colour edge
    versions so a mutated graph never serves stale frontiers.
    """

    engine = "dict"
    #: The dict engine scans the live attribute table per call (no snapshot
    #: to memoise scans on); callers restrict scans to their affected area.
    memoises_scans = False
    csr_entries_carried = 0

    def __init__(self, matcher):
        self.matcher = matcher

    # -- per-atom distance maps ------------------------------------------------

    def positive_distances(
        self,
        start: NodeId,
        color: Optional[str],
        max_depth: Optional[int],
        reverse: bool,
    ) -> Dict[NodeId, int]:
        """Shortest *positive* distances from (or to) ``start`` via one colour.

        The entry for ``start`` itself, when present, is the length of the
        shortest non-empty cycle through it.  Results of BFS runs are memoised
        per (start, colour, direction); a cached run is reused whenever it was
        computed with a depth bound at least as large as the requested one
        *and* no edge of the searched colour changed since it was computed
        (entries are tagged with the graph's per-colour edge version, so a
        mutated graph never serves stale reachability answers while memos of
        untouched colours stay warm).
        """
        from collections import deque

        matcher = self.matcher
        graph = matcher.graph
        if not graph.has_node(start):
            # A removed node must fail identically to a fresh matcher (and to
            # the CSR engine) even when a version-tagged memo for it is still
            # around — e.g. remove_node only bumps the versions of the
            # colours it had edges in (plus edges_version).
            raise GraphError(f"node {start!r} does not exist")
        cache = matcher._backward_cache if reverse else matcher._forward_cache
        key = (start, color)
        version = graph.edges_version if color is None else graph.color_version(color)
        cached = cache.get(key)
        if cached is not None:
            cached_version, cached_depth, distances = cached
            if cached_version == version:
                if cached_depth is None or (max_depth is not None and max_depth <= cached_depth):
                    return distances
            else:
                matcher.stale_invalidations += 1

        neighbours = graph.predecessors if reverse else graph.successors
        seen: Dict[NodeId, int] = {start: 0}
        cycle_length: Optional[int] = None
        queue = deque([start])
        while queue:
            current = queue.popleft()
            depth = seen[current]
            if max_depth is not None and depth >= max_depth:
                continue
            for nxt in neighbours(current, color):
                if nxt == start:
                    if cycle_length is None:
                        cycle_length = depth + 1
                    continue
                if nxt not in seen:
                    seen[nxt] = depth + 1
                    queue.append(nxt)

        distances = {node: dist for node, dist in seen.items() if node != start}
        if cycle_length is not None:
            distances[start] = cycle_length
        cache.put(key, (version, max_depth, distances))
        return distances

    def _matrix_row(self, source: NodeId, color: Optional[str]) -> Dict[NodeId, int]:
        from repro.regex.fclass import WILDCARD

        key = WILDCARD if color is None else color
        return self.matcher.matrix._row(source, key)

    # -- one-atom frontiers ------------------------------------------------------

    def atom_targets(self, source: NodeId, item) -> Set[NodeId]:
        matcher = self.matcher
        color = None if item.is_wildcard else item.color
        bound = item.max_count
        if matcher.matrix is not None:
            row = self._matrix_row(source, color)
        else:
            row = self.positive_distances(source, color, bound, reverse=False)
        return {
            target
            for target, dist in row.items()
            if dist >= 1 and (bound is None or dist <= bound)
        }

    def atom_sources(self, target: NodeId, item) -> Set[NodeId]:
        matcher = self.matcher
        color = None if item.is_wildcard else item.color
        bound = item.max_count
        if matcher.matrix is not None:
            from repro.regex.fclass import WILDCARD

            key = WILDCARD if color is None else color
            result: Set[NodeId] = set()
            for node in matcher.graph.nodes():
                dist = matcher.matrix._row(node, key).get(target)
                if dist is not None and dist >= 1 and (bound is None or dist <= bound):
                    result.add(node)
            return result
        row = self.positive_distances(target, color, bound, reverse=True)
        return {
            source
            for source, dist in row.items()
            if dist >= 1 and (bound is None or dist <= bound)
        }

    # -- set-level frontiers -----------------------------------------------------

    def set_targets(self, sources: Set[NodeId], item) -> Set[NodeId]:
        result: Set[NodeId] = set()
        for node in sources:
            result |= self.atom_targets(node, item)
        return result

    def set_sources(self, targets: Set[NodeId], item) -> Set[NodeId]:
        matcher = self.matcher
        if not targets:
            return set()
        if matcher.matrix is None:
            result: Set[NodeId] = set()
            for node in targets:
                result |= self.atom_sources(node, item)
            return result
        from repro.regex.fclass import WILDCARD

        color = None if item.is_wildcard else item.color
        bound = item.max_count
        key = WILDCARD if color is None else color
        result = set()
        for node in matcher.graph.nodes():
            row = matcher.matrix._row(node, key)
            if len(row) <= len(targets):
                hits = (dist for target, dist in row.items() if target in targets)
            else:
                hits = (row[target] for target in targets if target in row)
            for dist in hits:
                if dist >= 1 and (bound is None or dist <= bound):
                    result.add(node)
                    break
        return result

    # -- closures and whole expressions ------------------------------------------

    def backward_closure(
        self, starts: Iterable[NodeId], colors: Optional[Iterable[str]] = None
    ) -> Set[NodeId]:
        graph = self.matcher.graph
        start_set = {node for node in starts if graph.has_node(node)}
        if not start_set:
            return set()
        # Never the distance matrix — the closure must reflect the *current*
        # topology, so it walks the authoritative store.
        return graph.store.closure(start_set, colors, reverse=True)

    def backward_reachable(self, targets: Set[NodeId], regex) -> Set[NodeId]:
        frontier = set(targets)
        for item in reversed(regex.atoms):
            frontier = self.set_sources(frontier, item)
            if not frontier:
                break
        return frontier

    def targets_from(self, source: NodeId, regex) -> Set[NodeId]:
        frontier: Set[NodeId] = {source}
        for item in regex.atoms:
            next_frontier: Set[NodeId] = set()
            for node in frontier:
                next_frontier |= self.atom_targets(node, item)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def sources_to(self, target: NodeId, regex) -> Set[NodeId]:
        frontier: Set[NodeId] = {target}
        for item in reversed(regex.atoms):
            next_frontier: Set[NodeId] = set()
            for node in frontier:
                next_frontier |= self.atom_sources(node, item)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def edge_pairs(
        self, sources: Set[NodeId], targets: Set[NodeId], regex
    ) -> Set[Tuple[NodeId, NodeId]]:
        from repro.matching.frontiers import forward_sweep

        return forward_sweep(self.matcher, regex, list(sources), targets)

    def query_pairs(
        self, regex, sources, targets, method: str
    ) -> Set[Tuple[NodeId, NodeId]]:
        from repro.matching.frontiers import forward_sweep, meet_in_the_middle

        if method == "bidirectional":
            return meet_in_the_middle(self.matcher, regex, sources, targets)
        # With a distance matrix each expansion is a sequence of row walks
        # (the paper's nested-loop matrix method); without one this is the
        # plain forward BFS baseline of Exp-3.
        return forward_sweep(self.matcher, regex, sources, targets)

    # -- predicate scans ---------------------------------------------------------

    def matching_nodes(self, predicate):
        graph = self.matcher.graph
        return scan_nodes(predicate, graph.nodes(), graph.attributes)


class OverlayCsrAdapter:
    """Expansion through the graph's overlay-CSR store.

    Colours whose overlay is empty ("clean") run on the per-matcher
    :class:`~repro.matching.csr_engine.CsrEngine` over the store's base
    snapshot — full flat-array speed with memoised expansions that stay warm
    across mutations of *other* colours, because the engine is rebuilt only
    when the store compacts (old caches then serve as a validate-on-lookup
    donor, counted in ``csr_entries_carried``).  Dirty colours are expanded
    with the store's merged read-through frontiers, memoised in the
    matcher's LRU caches under the same per-colour version tags the dict
    engine uses.
    """

    engine = "csr"
    #: Predicate scans run on the base snapshot's memo (plus a live sweep of
    #: the few nodes created since) — repeated scans are effectively free.
    memoises_scans = True

    def __init__(self, matcher):
        self.matcher = matcher
        self.store = matcher.graph.overlay_store()
        self._engine = None
        self._engine_base = None
        self._promoted_base = 0

    # -- engine lifecycle --------------------------------------------------------

    def engine_handle(self):
        """This matcher's CSR engine over the store's current base.

        The base only changes when the store compacts; the retiring engine's
        caches then serve as a validate-on-lookup donor, so memoised
        expansions of colours the compaction did not rebuild stay warm
        (promotions are counted in :attr:`csr_entries_carried`).
        """
        from repro.matching.csr_engine import CsrEngine

        base = self.store.base()
        engine = self._engine
        if engine is not None and self._engine_base is base:
            return engine
        if engine is not None:
            self._promoted_base += engine.promoted
        fresh = CsrEngine(base, self.matcher._cache_capacity, donor=engine)
        self._engine = fresh
        self._engine_base = base
        return fresh

    @property
    def csr_entries_carried(self) -> int:
        engine = self._engine
        current = engine.promoted if engine is not None else 0
        return self._promoted_base + current

    # -- cleanliness helpers -----------------------------------------------------

    def _regex_clean(self, regex) -> bool:
        store = self.store
        if regex.has_wildcard:
            return store.is_clean(None)
        return all(store.is_clean(color) for color in regex.colors)

    def _all_in_base(self, nodes: Iterable[NodeId]) -> bool:
        new_nodes = self.store._new_nodes
        return not new_nodes or new_nodes.isdisjoint(nodes)

    def _atom_version(self, color: Optional[str]) -> int:
        graph = self.matcher.graph
        return graph.edges_version if color is None else graph.color_version(color)

    def _regex_version(self, regex):
        graph = self.matcher.graph
        if regex.has_wildcard:
            return graph.edges_version
        return tuple(graph.color_version(color) for color in sorted(regex.colors))

    # -- one-atom frontiers ------------------------------------------------------

    def _atom_frontier(self, node: NodeId, item, reverse: bool) -> Set[NodeId]:
        store = self.store
        store.sync()
        matcher = self.matcher
        color = None if item.is_wildcard else item.color
        if store.is_clean(color) and store.in_base(node):
            engine = self.engine_handle()
            compiled = engine.compiled
            index = compiled.node_index(node)
            expand = engine.atom_sources if reverse else engine.atom_targets
            ids = compiled.ids
            return {ids[j] for j in expand(index, item)}
        if not matcher.graph.has_node(node):
            raise GraphError(f"node {node!r} does not exist")
        # Dirty colour (or a node the base has not seen): merged read-through
        # expansion, memoised under the same version tags as the dict engine.
        cache = matcher._backward_cache if reverse else matcher._forward_cache
        key = (node, color, item.max_count)
        version = self._atom_version(color)
        cached = cache.get(key)
        if cached is not None:
            cached_version, frontier = cached
            if cached_version == version:
                return set(frontier)
            matcher.stale_invalidations += 1
        frontier = frozenset(store.frontier((node,), color, item.max_count, reverse))
        cache.put(key, (version, frontier))
        return set(frontier)

    def atom_targets(self, source: NodeId, item) -> Set[NodeId]:
        return self._atom_frontier(source, item, reverse=False)

    def atom_sources(self, target: NodeId, item) -> Set[NodeId]:
        return self._atom_frontier(target, item, reverse=True)

    # -- set-level frontiers -----------------------------------------------------

    def _set_frontier(self, nodes: Set[NodeId], item, reverse: bool) -> Set[NodeId]:
        store = self.store
        store.sync()
        color = None if item.is_wildcard else item.color
        if len(nodes) == 1:
            # Singletons go through the memoised per-node path, which stays
            # warm across repeated fixpoint sweeps.
            (node,) = nodes
            return self._atom_frontier(node, item, reverse)
        if store.is_clean(color) and self._all_in_base(nodes):
            engine = self.engine_handle()
            compiled = engine.compiled
            node_index = compiled.node_index
            indices = [node_index(node) for node in nodes]
            expand = engine.set_sources_indices if reverse else engine.set_targets_indices
            ids = compiled.ids
            return {ids[j] for j in expand(indices, item)}
        return store.frontier(nodes, color, item.max_count, reverse)

    def set_targets(self, sources: Set[NodeId], item) -> Set[NodeId]:
        if not sources:
            return set()
        return self._set_frontier(sources, item, reverse=False)

    def set_sources(self, targets: Set[NodeId], item) -> Set[NodeId]:
        if not targets:
            return set()
        return self._set_frontier(targets, item, reverse=True)

    # -- closures ----------------------------------------------------------------

    def backward_closure(
        self, starts: Iterable[NodeId], colors: Optional[Iterable[str]] = None
    ) -> Set[NodeId]:
        store = self.store
        store.sync()
        graph = self.matcher.graph
        start_set = {node for node in starts if graph.has_node(node)}
        if not start_set:
            return set()
        color_list = None if colors is None else list(colors)
        clean = (
            store.is_clean(None)
            if color_list is None
            else all(store.is_clean(color) for color in color_list)
        )
        if clean and self._all_in_base(start_set):
            engine = self.engine_handle()
            compiled = engine.compiled
            node_index = compiled.node_index
            color_ids = None
            if color_list is not None:
                color_ids = [
                    color_id
                    for color_id in (compiled.color_id(color) for color in color_list)
                    if color_id is not None
                ]
            indices = engine.backward_closure_indices(
                [node_index(node) for node in start_set], color_ids
            )
            ids = compiled.ids
            return start_set | {ids[j] for j in indices}
        return store.closure(start_set, color_list, reverse=True)

    # -- whole expressions -------------------------------------------------------

    def backward_reachable(self, targets: Set[NodeId], regex) -> Set[NodeId]:
        store = self.store
        store.sync()
        if not targets:
            return set()
        if self._regex_clean(regex) and self._all_in_base(targets):
            engine = self.engine_handle()
            compiled = engine.compiled
            node_index = compiled.node_index
            indices = engine.backward_reachable_indices(
                [node_index(node) for node in targets], regex
            )
            ids = compiled.ids
            return {ids[j] for j in indices}
        # Dirty path: fold the merged set-level frontiers right-to-left,
        # memoised per (regex, target set) under the regex's version vector —
        # the refinement fixpoints keep asking for stabilised sets.
        matcher = self.matcher
        target_set = frozenset(targets)
        key = ("bwd", regex, target_set)
        version = self._regex_version(regex)
        cached = matcher._backward_cache.get(key)
        if cached is not None:
            cached_version, frontier = cached
            if cached_version == version:
                return set(frontier)
            matcher.stale_invalidations += 1
        frontier: Set[NodeId] = set(target_set)
        for item in reversed(regex.atoms):
            frontier = self.set_sources(frontier, item)
            if not frontier:
                break
        result = frozenset(frontier)
        matcher._backward_cache.put(key, (version, result))
        return set(result)

    def _expression(self, node: NodeId, regex, reverse: bool) -> Set[NodeId]:
        store = self.store
        store.sync()
        if self._regex_clean(regex) and store.in_base(node):
            engine = self.engine_handle()
            compiled = engine.compiled
            ids = compiled.ids
            index = compiled.node_index(node)
            indices = engine.sources_to(index, regex) if reverse else engine.targets_from(index, regex)
            return {ids[j] for j in indices}
        if not self.matcher.graph.has_node(node):
            raise GraphError(f"node {node!r} does not exist")
        frontier: Set[NodeId] = {node}
        atoms = reversed(regex.atoms) if reverse else regex.atoms
        for item in atoms:
            frontier = self._set_frontier(frontier, item, reverse) if frontier else frontier
            if not frontier:
                break
        return frontier

    def targets_from(self, source: NodeId, regex) -> Set[NodeId]:
        return self._expression(source, regex, reverse=False)

    def sources_to(self, target: NodeId, regex) -> Set[NodeId]:
        return self._expression(target, regex, reverse=True)

    def edge_pairs(
        self, sources: Set[NodeId], targets: Set[NodeId], regex
    ) -> Set[Tuple[NodeId, NodeId]]:
        store = self.store
        store.sync()
        if (
            self._regex_clean(regex)
            and self._all_in_base(sources)
            and self._all_in_base(targets)
        ):
            engine = self.engine_handle()
            compiled = engine.compiled
            node_index = compiled.node_index
            index_pairs = engine.matching_pairs(
                regex,
                frozenset(node_index(node) for node in sources),
                frozenset(node_index(node) for node in targets),
            )
            ids = compiled.ids
            return {(ids[a], ids[b]) for a, b in index_pairs}
        from repro.matching.frontiers import forward_sweep

        return forward_sweep(self.matcher, regex, list(sources), targets)

    def query_pairs(
        self, regex, sources, targets, method: str
    ) -> Set[Tuple[NodeId, NodeId]]:
        from repro.matching.frontiers import forward_sweep, meet_in_the_middle

        store = self.store
        store.sync()
        if (
            self._regex_clean(regex)
            and self._all_in_base(sources)
            and self._all_in_base(targets)
        ):
            # Entirely in dense index space, translating once at the end;
            # the engine memoises the whole query per candidate sets, so an
            # unchanged clean query is one frozenset hash on re-execution.
            engine = self.engine_handle()
            compiled = engine.compiled
            node_index = compiled.node_index
            index_pairs = engine.query_pairs(
                regex,
                frozenset(node_index(node) for node in sources),
                frozenset(node_index(node) for node in targets),
                method,
            )
            ids = compiled.ids
            return {(ids[a], ids[b]) for a, b in index_pairs}
        if method == "bidirectional":
            return meet_in_the_middle(self.matcher, regex, sources, targets)
        return forward_sweep(self.matcher, regex, sources, targets)

    # -- predicate scans ---------------------------------------------------------

    def matching_nodes(self, predicate):
        return self.store.matching_nodes(predicate)


class PartitionedAdapter:
    """Expansion through the graph's sharded :class:`PartitionedStore`.

    Every frontier call becomes a boundary exchange over per-shard CSR
    kernels (see :mod:`repro.storage.partition`); answers are memoised in
    the matcher's LRU caches under the exact per-colour version tags the
    dict engine uses, so the engine-free fixpoints above see identical
    staleness behaviour.  Predicate scans walk the live attribute table —
    shard compiles deliberately carry no attribute copies.
    """

    engine = "partitioned"
    #: Like the dict engine: no snapshot to memoise scans on.
    memoises_scans = False
    csr_entries_carried = 0

    def __init__(self, matcher):
        self.matcher = matcher
        self.store = matcher.graph.partitioned_store()

    def _atom_version(self, color: Optional[str]) -> int:
        graph = self.matcher.graph
        return graph.edges_version if color is None else graph.color_version(color)

    # -- one-atom frontiers ------------------------------------------------------

    def _atom_frontier(self, node: NodeId, item, reverse: bool) -> Set[NodeId]:
        store = self.store
        store.sync()
        matcher = self.matcher
        if not matcher.graph.has_node(node):
            raise GraphError(f"node {node!r} does not exist")
        color = None if item.is_wildcard else item.color
        cache = matcher._backward_cache if reverse else matcher._forward_cache
        key = (node, color, item.max_count)
        version = self._atom_version(color)
        cached = cache.get(key)
        if cached is not None:
            cached_version, frontier = cached
            if cached_version == version:
                return set(frontier)
            matcher.stale_invalidations += 1
        frontier = frozenset(store.frontier((node,), color, item.max_count, reverse))
        cache.put(key, (version, frontier))
        return set(frontier)

    def atom_targets(self, source: NodeId, item) -> Set[NodeId]:
        return self._atom_frontier(source, item, reverse=False)

    def atom_sources(self, target: NodeId, item) -> Set[NodeId]:
        return self._atom_frontier(target, item, reverse=True)

    # -- set-level frontiers -----------------------------------------------------

    def _set_frontier(self, nodes: Set[NodeId], item, reverse: bool) -> Set[NodeId]:
        if len(nodes) == 1:
            (node,) = nodes
            return self._atom_frontier(node, item, reverse)
        store = self.store
        color = None if item.is_wildcard else item.color
        return store.frontier(nodes, color, item.max_count, reverse)

    def set_targets(self, sources: Set[NodeId], item) -> Set[NodeId]:
        if not sources:
            return set()
        return self._set_frontier(sources, item, reverse=False)

    def set_sources(self, targets: Set[NodeId], item) -> Set[NodeId]:
        if not targets:
            return set()
        return self._set_frontier(targets, item, reverse=True)

    # -- closures and whole expressions ------------------------------------------

    def backward_closure(
        self, starts: Iterable[NodeId], colors: Optional[Iterable[str]] = None
    ) -> Set[NodeId]:
        graph = self.matcher.graph
        start_set = {node for node in starts if graph.has_node(node)}
        if not start_set:
            return set()
        return self.store.closure(start_set, colors, reverse=True)

    def backward_reachable(self, targets: Set[NodeId], regex) -> Set[NodeId]:
        frontier = set(targets)
        for item in reversed(regex.atoms):
            frontier = self.set_sources(frontier, item)
            if not frontier:
                break
        return frontier

    def targets_from(self, source: NodeId, regex) -> Set[NodeId]:
        frontier: Set[NodeId] = {source}
        for item in regex.atoms:
            frontier = self.set_targets(frontier, item)
            if not frontier:
                break
        return frontier

    def sources_to(self, target: NodeId, regex) -> Set[NodeId]:
        frontier: Set[NodeId] = {target}
        for item in reversed(regex.atoms):
            frontier = self.set_sources(frontier, item)
            if not frontier:
                break
        return frontier

    def edge_pairs(
        self, sources: Set[NodeId], targets: Set[NodeId], regex
    ) -> Set[Tuple[NodeId, NodeId]]:
        from repro.matching.frontiers import forward_sweep

        return forward_sweep(self.matcher, regex, list(sources), targets)

    def query_pairs(
        self, regex, sources, targets, method: str
    ) -> Set[Tuple[NodeId, NodeId]]:
        from repro.matching.frontiers import forward_sweep, meet_in_the_middle

        if method == "bidirectional":
            return meet_in_the_middle(self.matcher, regex, sources, targets)
        return forward_sweep(self.matcher, regex, sources, targets)

    # -- predicate scans ---------------------------------------------------------

    def matching_nodes(self, predicate):
        graph = self.matcher.graph
        return scan_nodes(predicate, graph.nodes(), graph.attributes)
