"""The :class:`GraphStore` protocol: the storage layer's read surface.

A store answers topology questions for one data graph.  Two backends exist:

* :class:`~repro.storage.dict_store.DictStore` — the authoritative
  dict-of-set adjacency (every :class:`~repro.graph.data_graph.DataGraph`
  owns exactly one; mutations land here first and are journaled);
* :class:`~repro.storage.overlay.OverlayCsrStore` — a derived array-backed
  view: an immutable CSR base plus per-colour edge overlays, synchronised
  from the journal in O(delta) per mutation.

Everything above the storage layer (path matchers, the PQ/RQ fixpoints, the
incremental maintainer, sessions) reads through this surface — the dict/CSR
branching that used to be scattered across the matching modules lives in
:mod:`repro.storage.adapter` and nowhere else.

The semantic contract shared by every method that expands frontiers: paths
are **non-empty** (the paper's requirement), so a start node is part of a
result exactly when it is re-reached through at least one edge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set

# Re-exported for the storage backends (dict store, snapshots, overlay
# dirty-colour reads): the generic block-BFS definition now lives with the
# vectorised kernels so every frontier expansion shares one semantics.
from repro.kernels import bfs_block_frontier

NodeId = Hashable

__all__ = [
    "GraphStore",
    "bfs_block_frontier",
    "predicate_check",
    "scan_nodes",
]


class GraphStore(ABC):
    """Read/maintenance surface of one storage backend.

    ``kind`` names the backend (``"dict"`` / ``"overlay-csr"``) — it is a
    storage identity, distinct from the evaluation ``engine`` strings the
    matchers expose (the dict store backs the ``dict`` engine, the overlay
    store the ``csr`` engine).
    """

    kind: str = ""

    # -- synchronisation ---------------------------------------------------------

    def sync(self) -> None:
        """Bring derived state up to date with the owning graph.

        The authoritative :class:`DictStore` is always current (mutations
        land there synchronously), so its ``sync`` is a no-op; derived
        stores replay the graph's mutation journal here.
        """

    # -- reads (node-id space) ---------------------------------------------------

    @abstractmethod
    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """Out-neighbours of ``node`` (restricted to one colour if given)."""

    @abstractmethod
    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """In-neighbours of ``node`` (restricted to one colour if given)."""

    @abstractmethod
    def frontier(
        self,
        starts: Iterable[NodeId],
        color: Optional[str],
        bound: Optional[int],
        reverse: bool = False,
    ) -> Set[NodeId]:
        """Nodes at positive distance ``1 … bound`` from *any* start via one colour.

        ``color=None`` walks edges of every colour (the wildcard atom);
        ``bound=None`` is unbounded.  A start node is included exactly when
        it is re-reached through a non-empty path — the block semantics of
        one F-class regex atom, shared verbatim by both backends and
        asserted equal by ``tests/test_store_parity.py``.
        """

    def closure(
        self,
        starts: Iterable[NodeId],
        colors: Optional[Iterable[str]] = None,
        reverse: bool = True,
    ) -> Set[NodeId]:
        """``starts`` plus every node with a directed path into (out of) them.

        Unbounded and colour-agnostic unless ``colors`` restricts the
        traversable edges.  The default implementation walks the
        authoritative adjacency one hop at a time; backends may override
        with a batched variant.
        """
        from collections import deque

        start_set = set(starts)
        color_list = None if colors is None else list(colors)
        closure = set(start_set)
        queue = deque(start_set)
        step = self.predecessors if reverse else self.successors
        while queue:
            current = queue.popleft()
            if color_list is None:
                incoming = step(current)
            else:
                incoming = set()
                for color in color_list:
                    incoming |= step(current, color)
            for nxt in incoming:
                if nxt not in closure:
                    closure.add(nxt)
                    queue.append(nxt)
        return closure

    # -- snapshot pinning --------------------------------------------------------

    def pin_snapshot(self, version: Optional[int] = None):
        """Pin an immutable snapshot of the store at its current version.

        MVCC backends (the overlay store) return a refcounted
        :class:`~repro.storage.snapshot.StoreSnapshot` whose reads are safe
        from any thread and which later mutations — including compactions —
        can never invalidate.  ``version`` may assert the expected graph
        version; only the *current* one can be pinned (stores keep no
        history).  Backends without MVCC support raise
        :class:`~repro.exceptions.SnapshotError` — this default.
        """
        from repro.exceptions import SnapshotError

        raise SnapshotError(
            f"the {self.kind or type(self).__name__!s} store does not support "
            f"snapshot pinning; use the graph's overlay store"
        )

    def release_snapshot(self, snapshot) -> None:
        """Release one :meth:`pin_snapshot` reference (drop at zero)."""
        from repro.exceptions import SnapshotError

        raise SnapshotError(
            f"the {self.kind or type(self).__name__!s} store does not support "
            f"snapshot pinning; use the graph's overlay store"
        )

    # -- bookkeeping -------------------------------------------------------------

    def overlay_stats(self) -> Dict[str, Any]:
        """Occupancy / maintenance statistics (empty for the dict store)."""
        return {}


def predicate_check(predicate: Any):
    """The fastest membership test a predicate-like object offers.

    Accepts :class:`~repro.query.predicates.Predicate` objects (compiled to
    a closure), anything with a callable ``matches``, or a plain callable
    over attribute mappings — checked in that order.  The order matters: a
    plain callable that happens to carry a ``compile`` attribute (functions
    take arbitrary attributes) must be called as-is, not have its
    unrelated ``compile`` invoked.
    """
    # Deferred import: repro.query pulls in the whole query package.
    from repro.query.predicates import Predicate

    if isinstance(predicate, Predicate):
        return predicate.compile()
    matches = getattr(predicate, "matches", None)
    if matches is not None and callable(matches):
        return matches
    return predicate


def scan_nodes(predicate: Any, nodes: Iterable[NodeId], attributes) -> List[NodeId]:
    """Nodes whose attribute mapping satisfies ``predicate`` (``None`` = all)."""
    if predicate is None:
        return list(nodes)
    check = predicate_check(predicate)
    return [node for node in nodes if check(attributes(node))]
