"""Vertex-partitioned CSR storage with boundary-frontier exchange.

The third storage backend (after the authoritative dict store and the
overlay-CSR store): one :class:`PartitionedStore` splits a graph's vertex
set into shards, compiles each shard into its own
:class:`~repro.graph.csr.CompiledGraph` over a *local* id space, and
answers the :class:`~repro.storage.base.GraphStore` frontier/closure reads
through a cross-shard worklist:

* every node has exactly one **owner** shard; a shard's subgraph holds the
  node's complete in- *and* out-edge sets, so any expansion seeded at owned
  nodes is locally exact;
* edges crossing a shard boundary intern the foreign endpoint into the
  shard as a **halo** node — reaching a halo node ends the local walk and
  forwards the node to its owner in the next exchange round;
* bounded frontiers run **level-synchronous** (one BFS level per exchange
  round, so global distances are exact), unbounded closures run each shard
  to a **local fixpoint** per round and exchange only the boundary crossers
  (far fewer rounds on locality-friendly partitions);
* per-shard expansion is the PR 8 kernel (`expand_frontier` /
  `closure_frontier`) over the shard's CSR layers, mapped across active
  shards either serially or by a ``ThreadPoolExecutor`` (``parallelism=``).
  Results are merged in *shard order*, never completion order, so the
  parallel path is byte-identical to the serial one.

Why sharding pays on one core too: the vector kernels keep per-call
``num_nodes``-sized visited/reached state, so a query whose touched region
lives in one shard of ``1/S``-th the graph pays ``1/S``-th of that cost —
the range partition plus the id-locality of
:func:`~repro.datasets.synthetic.scale_free_stream` make that the common
case.  On multi-core hosts the numpy gathers additionally release the GIL,
so distinct active shards genuinely overlap.

Construction is either graph-backed (:meth:`PartitionedStore.from_graph`,
reachable as ``DataGraph.partitioned_store()``) or streamed
(:meth:`PartitionedStore.from_edges` — compact int-id arrays, no full
python edge list; see :mod:`repro.datasets.ingest`).  Graph-backed stores
follow mutations by full re-partition on the next read (``sync``) — this
backend trades update latency for scan locality, the opposite bargain to
the overlay store.

reprolint rule R009 patrols the isolation invariant in this module: code
holding a shard expression may only touch the shard's *public* surface —
:class:`Shard` deliberately has no private cross-shard state.
"""

from __future__ import annotations

import zlib
from array import array
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import GraphError
from repro.kernels import (
    active_kernel_name,
    closure_frontier,
    expand_frontier,
    neighbors_of,
)
from repro.session.defaults import (
    DEFAULT_PARTITION_PARALLELISM,
    DEFAULT_PARTITION_SHARDS,
)
from repro.storage.base import GraphStore

NodeId = Hashable

#: Partition specs accepted by :class:`PartitionedStore`: a named strategy or
#: a callable mapping a node id to its shard index.
PartitionSpec = Union[None, str, Callable[[NodeId], int]]

__all__ = [
    "PartitionedStore",
    "Shard",
]


def _resolve_owners(
    partition: PartitionSpec,
    shards: int,
    ids: Sequence[NodeId],
) -> array:
    """Owner shard index per global node index, as a compact int array.

    ``"range"`` (the default) slices the interning order into equal
    contiguous blocks — with id-local edge streams this is what confines a
    query's touched region to few shards.  ``"hash"`` scatters nodes by
    ``crc32`` of their repr (used by parity tests to force boundary-heavy
    cuts deterministically — the builtin ``hash`` is salted per process).
    A callable decides per node id and must return ``0 <= index < shards``.
    """
    n = len(ids)
    owners = array("i", bytes(4 * n))
    if partition is None or partition == "range":
        for g in range(n):
            owners[g] = g * shards // n
    elif partition == "hash":
        for g, node in enumerate(ids):
            owners[g] = zlib.crc32(repr(node).encode("utf-8")) % shards
    elif callable(partition):
        for g, node in enumerate(ids):
            index = partition(node)
            if not isinstance(index, int) or not 0 <= index < shards:
                raise GraphError(
                    f"partition callable returned {index!r} for node {node!r}; "
                    f"expected an int in [0, {shards})"
                )
            owners[g] = index
    else:
        raise GraphError(
            f"unknown partition spec {partition!r}; expected 'range', 'hash' "
            f"or a callable node -> shard index"
        )
    return owners


class Shard:
    """One vertex partition: a local subgraph, its CSR compile, and id maps.

    The subgraph holds every edge incident to an *owned* node; foreign
    endpoints of boundary edges are interned as halo nodes.  Local indices
    are the shard compile's own dense ids — ``global_ids`` translates them
    back to the store's global index space, ``local_index`` the other way.

    Every attribute and method here is public **on purpose**: this class is
    the boundary-exchange API, and reprolint rule R009 rejects any code
    that reaches through a shard expression into private state instead.
    """

    __slots__ = ("index", "graph", "compiled", "global_ids", "local_index", "owned_count")

    def __init__(self, index: int, graph, global_index: Dict[NodeId, int], owned_count: int):
        # Imported here: repro.graph.csr imports the storage package.
        from repro.graph.csr import compile_graph

        self.index = index
        self.graph = graph
        self.compiled = compile_graph(graph)
        self.global_ids: List[int] = [global_index[node] for node in self.compiled.ids]
        self.local_index: Dict[int, int] = {
            g: local for local, g in enumerate(self.global_ids)
        }
        self.owned_count = owned_count

    @property
    def num_nodes(self) -> int:
        """Local node count — owned plus halo."""
        return self.compiled.num_nodes

    def to_local(self, global_indices: Iterable[int]) -> List[int]:
        """Translate global indices into this shard's local id space.

        Callers route by owner first, so every index is present (owned
        nodes are interned even when isolated).
        """
        local = self.local_index
        return [local[g] for g in global_indices]

    def layer_for(self, color: Optional[str], reverse: bool):
        """The shard's CSR layer for one colour (``None`` = wildcard).

        ``None`` is returned when the colour has no edges in this shard —
        the exchange loop then skips the shard for the round.
        """
        color_id = self.compiled.color_id(color)
        if color_id is None:
            return None
        return self.compiled.layer(color_id, reverse)

    def layers_for(self, colors: Optional[Iterable[str]], reverse: bool) -> List[Any]:
        """The CSR layers for a colour set (``None`` = the wildcard layer)."""
        if colors is None:
            return [self.layer_for(None, reverse)]
        layers = [self.layer_for(color, reverse) for color in colors]
        return [layer for layer in layers if layer is not None]

    def expand(self, seeds: List[int], color: Optional[str], bound: Optional[int], reverse: bool) -> List[int]:
        """Block-semantics bounded BFS from local seeds via one colour."""
        layer = self.layer_for(color, reverse)
        if layer is None:
            return []
        return expand_frontier(layer, self.compiled.num_nodes, seeds, bound)

    def sweep(self, seeds: List[int], colors: Optional[Iterable[str]], reverse: bool) -> List[int]:
        """Local-fixpoint reach from local seeds via a colour set."""
        layers = self.layers_for(colors, reverse)
        if not layers:
            return []
        if len(layers) == 1:
            return expand_frontier(layers[0], self.compiled.num_nodes, seeds, None)
        return closure_frontier(layers, self.compiled.num_nodes, seeds)

    def neighbors(self, seeds: List[int], color: Optional[str], reverse: bool) -> List[int]:
        """Plain one-hop neighbour indices of local seeds via one colour."""
        layer = self.layer_for(color, reverse)
        if layer is None:
            return []
        return neighbors_of(layer, self.compiled.num_nodes, seeds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Shard(index={self.index}, nodes={self.num_nodes}, "
            f"owned={self.owned_count}, edges={self.compiled.num_edges})"
        )


class PartitionedStore(GraphStore):
    """Sharded CSR store: per-shard kernels plus boundary-frontier exchange.

    ``exchange_rounds`` counts boundary exchanges across the store's
    lifetime (one per BFS level for bounded reads, one per cross-shard
    forwarding wave for closures) — the scaling experiment reports it as
    the communication cost a real distributed deployment would pay.
    """

    kind = "partitioned"

    def __init__(
        self,
        graph=None,
        *,
        shards: int = DEFAULT_PARTITION_SHARDS,
        parallelism: int = DEFAULT_PARTITION_PARALLELISM,
        partition: PartitionSpec = None,
    ):
        if not isinstance(shards, int) or shards < 1:
            raise GraphError(f"shard count must be a positive int, got {shards!r}")
        if not isinstance(parallelism, int) or parallelism < 1:
            raise GraphError(f"parallelism must be a positive int, got {parallelism!r}")
        self._graph = graph
        self._shard_count = shards
        self._parallelism = parallelism
        self._partition = partition
        self._pool = None
        self._shards: List[Shard] = []
        self._ids: Tuple[NodeId, ...] = ()
        self._index: Dict[NodeId, int] = {}
        self._owner = array("i")
        self._edge_count = 0
        self._boundary_nodes = 0
        self._built_version: Optional[int] = None
        self.exchange_rounds = 0
        if graph is not None:
            self.sync()

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph,
        *,
        shards: int = DEFAULT_PARTITION_SHARDS,
        parallelism: int = DEFAULT_PARTITION_PARALLELISM,
        partition: PartitionSpec = None,
    ) -> "PartitionedStore":
        """Partition an existing :class:`~repro.graph.data_graph.DataGraph`."""
        return cls(graph, shards=shards, parallelism=parallelism, partition=partition)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[NodeId, NodeId, str]],
        *,
        shards: int = DEFAULT_PARTITION_SHARDS,
        parallelism: int = DEFAULT_PARTITION_PARALLELISM,
        partition: PartitionSpec = None,
        name: str = "stream",
    ) -> "PartitionedStore":
        """Build a store from an edge-triple stream without a global graph.

        The stream is consumed once; node ids and colours are interned on
        the fly and the triples land in compact ``array('i')`` buffers
        (12 bytes per edge), so peak python-object footprint is bounded by
        the caller's chunking, not the edge count.  Duplicate triples are
        tolerated (they collapse inside the shard subgraphs) but still
        count towards the ingested-edge statistic.
        """
        store = cls(None, shards=shards, parallelism=parallelism, partition=partition)
        index: Dict[NodeId, int] = {}
        ids: List[NodeId] = []
        palette: List[str] = []
        color_index: Dict[str, int] = {}
        sources = array("i")
        targets = array("i")
        color_ids = array("i")
        for source, target, color in edges:
            si = index.get(source)
            if si is None:
                si = index[source] = len(ids)
                ids.append(source)
            ti = index.get(target)
            if ti is None:
                ti = index[target] = len(ids)
                ids.append(target)
            ci = color_index.get(color)
            if ci is None:
                ci = color_index[color] = len(palette)
                palette.append(color)
            sources.append(si)
            targets.append(ti)
            color_ids.append(ci)

        def int_triples() -> Iterable[Tuple[int, int, str]]:
            for k in range(len(sources)):
                yield sources[k], targets[k], palette[color_ids[k]]

        store._assemble(tuple(ids), index, int_triples(), len(sources), name)
        return store

    def _assemble(
        self,
        ids: Tuple[NodeId, ...],
        index: Dict[NodeId, int],
        triples: Iterable[Tuple[int, int, str]],
        edge_count: int,
        name: str,
    ) -> None:
        """Partition interned nodes and int-indexed edge triples into shards."""
        # Imported here: repro.graph pulls the storage package in at import.
        from repro.graph.data_graph import DataGraph

        self._ids = ids
        self._index = index
        self._edge_count = edge_count
        n = len(ids)
        owners = _resolve_owners(self._partition, self._shard_count, ids) if n else array("i")
        self._owner = owners
        graphs = [DataGraph(f"{name}/shard{i}") for i in range(self._shard_count)]
        owned = [0] * self._shard_count
        for g in range(n):
            shard_index = owners[g]
            graphs[shard_index].add_node(ids[g])
            owned[shard_index] += 1
        for si, ti, color in triples:
            source_owner = owners[si]
            target_owner = owners[ti]
            graphs[source_owner].add_edge(ids[si], ids[ti], color)
            if target_owner != source_owner:
                graphs[target_owner].add_edge(ids[si], ids[ti], color)
        self._shards = [
            Shard(i, graphs[i], index, owned[i]) for i in range(self._shard_count)
        ]
        self._boundary_nodes = sum(shard.num_nodes for shard in self._shards) - n

    # -- synchronisation ---------------------------------------------------------

    def sync(self) -> None:
        """Re-partition after graph mutations (full rebuild; see module doc).

        Streamed stores (no backing graph) are immutable and never rebuild.
        """
        graph = self._graph
        if graph is None or self._built_version == graph.version:
            return
        self._built_version = graph.version
        index = {node: g for g, node in enumerate(graph.nodes())}
        ids = tuple(index)
        triples = (
            (index[edge.source], index[edge.target], edge.color)
            for edge in graph.edges()
        )
        self._assemble(ids, index, triples, graph.num_edges, graph.name)

    # -- exchange orchestration --------------------------------------------------

    def _route(self, frontier: Iterable[int]) -> List[Tuple[Shard, List[int]]]:
        """Group a global frontier by owner shard, in shard order."""
        owners = self._owner
        buckets: Dict[int, List[int]] = {}
        for g in frontier:
            buckets.setdefault(owners[g], []).append(g)
        return [(self._shards[s], buckets[s]) for s in sorted(buckets)]

    def _map_shards(self, jobs: List[Callable[[], List[int]]]) -> List[List[int]]:
        """Run per-shard expansion jobs, results in submission (shard) order.

        The thread pool engages only when it can help (``parallelism > 1``
        and more than one active shard); collecting futures in submission
        order keeps the merge deterministic regardless of scheduling.
        """
        if self._parallelism > 1 and len(jobs) > 1:
            pool = self._ensure_pool()
            futures = [pool.submit(job) for job in jobs]
            return [future.result() for future in futures]
        return [job() for job in jobs]

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self._parallelism, thread_name_prefix="repro-shard"
            )
        return self._pool

    def close(self) -> None:
        """Shut the shard thread pool down (idempotent; pools restart lazily)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _exchange_bounded(
        self, seeds: Set[int], color: Optional[str], bound: int, reverse: bool
    ) -> Set[int]:
        """Level-synchronous bounded exchange: one global BFS level per round.

        Equivalent to :func:`~repro.kernels.bfs_block_frontier` over the
        whole graph: each round expands the live frontier exactly one hop
        inside the owners (which hold the complete edge sets of their
        nodes), records every neighbour, and advances only unvisited nodes.
        """
        visited = set(seeds)
        frontier = set(seeds)
        reached: Set[int] = set()
        depth = 0
        while frontier and depth < bound:
            depth += 1
            routed = self._route(frontier)
            jobs = [
                (lambda shard=shard, locals_=shard.to_local(seeds_): shard.expand(
                    locals_, color, 1, reverse
                ))
                for shard, seeds_ in routed
            ]
            results = self._map_shards(jobs)
            self.exchange_rounds += 1
            wave: Set[int] = set()
            for (shard, _), local_reached in zip(routed, results):
                global_ids = shard.global_ids
                for local in local_reached:
                    wave.add(global_ids[local])
            reached |= wave
            frontier = wave - visited
            visited |= frontier
        return reached

    def _exchange_fixpoint(
        self, seeds: Set[int], colors: Optional[Iterable[str]], reverse: bool
    ) -> Set[int]:
        """Unbounded exchange: local fixpoints per round, crossers forwarded.

        A node discovered inside its own owner shard is *complete* (the
        owner holds its full edge set, and the local kernel already ran it
        to fixpoint); only nodes discovered as halo copies re-seed their
        owners next round.  ``expanded`` keeps re-forwarded nodes from
        cycling.
        """
        color_list = None if colors is None else list(colors)
        expanded = set(seeds)
        frontier = set(seeds)
        reached: Set[int] = set()
        owners = self._owner
        while frontier:
            routed = self._route(frontier)
            jobs = [
                (lambda shard=shard, locals_=shard.to_local(seeds_): shard.sweep(
                    locals_, color_list, reverse
                ))
                for shard, seeds_ in routed
            ]
            results = self._map_shards(jobs)
            self.exchange_rounds += 1
            crossers: Set[int] = set()
            for (shard, _), local_reached in zip(routed, results):
                global_ids = shard.global_ids
                shard_index = shard.index
                for local in local_reached:
                    g = global_ids[local]
                    reached.add(g)
                    if owners[g] == shard_index:
                        expanded.add(g)
                    else:
                        crossers.add(g)
            frontier = crossers - expanded
            expanded |= frontier
        return reached

    # -- reads (node-id space) ---------------------------------------------------

    def _point_neighbors(self, node: NodeId, color: Optional[str], reverse: bool) -> Set[NodeId]:
        self.sync()
        g = self._index.get(node)
        if g is None:
            return set()
        shard = self._shards[self._owner[g]]
        local_reached = shard.neighbors(shard.to_local((g,)), color, reverse)
        global_ids = shard.global_ids
        ids = self._ids
        return {ids[global_ids[local]] for local in local_reached}

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._point_neighbors(node, color, reverse=False)

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        return self._point_neighbors(node, color, reverse=True)

    def frontier(
        self,
        starts: Iterable[NodeId],
        color: Optional[str],
        bound: Optional[int],
        reverse: bool = False,
    ) -> Set[NodeId]:
        self.sync()
        index = self._index
        seeds = {index[s] for s in starts if s in index}
        if not seeds:
            return set()
        if bound is None:
            reached = self._exchange_fixpoint(
                seeds, None if color is None else (color,), reverse
            )
        else:
            reached = self._exchange_bounded(seeds, color, bound, reverse)
        ids = self._ids
        return {ids[g] for g in reached}

    def closure(
        self,
        starts: Iterable[NodeId],
        colors: Optional[Iterable[str]] = None,
        reverse: bool = True,
    ) -> Set[NodeId]:
        self.sync()
        index = self._index
        start_set = set(starts)
        seeds = {index[s] for s in start_set if s in index}
        if not seeds:
            return start_set
        reached = self._exchange_fixpoint(seeds, colors, reverse)
        ids = self._ids
        return start_set | {ids[g] for g in reached}

    # -- store surface for the matching adapters ---------------------------------

    @property
    def graph(self):
        """The backing graph (``None`` for streamed stores)."""
        return self._graph

    @property
    def shards(self) -> Tuple[Shard, ...]:
        """The shard tuple, in shard-index order (the exchange merge order)."""
        self.sync()
        return tuple(self._shards)

    @property
    def parallelism(self) -> int:
        return self._parallelism

    @property
    def shard_count(self) -> int:
        return self._shard_count

    @property
    def partition_spec(self) -> PartitionSpec:
        return self._partition

    @property
    def num_nodes(self) -> int:
        self.sync()
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        self.sync()
        return self._edge_count

    def nodes(self) -> Iterable[NodeId]:
        """Global node ids in interning order."""
        self.sync()
        return iter(self._ids)

    def has_node(self, node: NodeId) -> bool:
        self.sync()
        return node in self._index

    def owner_shard(self, node: NodeId) -> Optional[Shard]:
        """The shard owning ``node`` (``None`` for unknown nodes)."""
        self.sync()
        g = self._index.get(node)
        if g is None:
            return None
        return self._shards[self._owner[g]]

    # -- bookkeeping -------------------------------------------------------------

    def overlay_stats(self) -> Dict[str, Any]:
        """Partition statistics, shaped for ``explain()`` / ``store_stats()``."""
        self.sync()
        n = len(self._ids)
        return {
            "store": "partitioned",
            "shards": len(self._shards),
            "parallelism": self._parallelism,
            "nodes": n,
            "edges": self._edge_count,
            "boundary_nodes": self._boundary_nodes,
            "boundary_fraction": round(self._boundary_nodes / n, 6) if n else 0.0,
            "exchange_rounds": self.exchange_rounds,
            "kernel": active_kernel_name(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionedStore(shards={len(self._shards)}, nodes={len(self._ids)}, "
            f"edges={self._edge_count}, parallelism={self._parallelism})"
        )
