"""The storage layer: one mutable, array-friendly home for graph topology.

Before this package existed the repository kept two parallel worlds alive:
the adjacency dicts of :class:`~repro.graph.data_graph.DataGraph` (always
current, slow to traverse) and the compiled CSR snapshots of
:mod:`repro.graph.csr` (fast, but invalidated by every mutation).  Sixteen
``engine ==`` branches across the matching modules picked between them per
call.  The storage layer unifies the two behind one protocol:

* :class:`~repro.storage.base.GraphStore` — the read/maintenance surface
  every backend implements (merged frontier expansion, reverse closures,
  predicate scans, overlay statistics);
* :class:`~repro.storage.dict_store.DictStore` — the authoritative adjacency
  dicts plus the mutation journal; :class:`DataGraph` is a thin facade over
  it, and it stays the parity reference for every other backend;
* :class:`~repro.storage.overlay.OverlayCsrStore` — an immutable CSR base
  snapshot plus per-colour added/removed edge overlays with read-through
  merged frontiers, compacted back into a fresh base (donor-layer recompile)
  once the overlay fraction crosses a planner-tunable threshold;
* :class:`~repro.storage.partition.PartitionedStore` — a vertex-partitioned
  backend for graphs far beyond the in-memory fixtures: per-shard CSR
  compiles over local id spaces, boundary-frontier exchange between shards,
  and optional thread-pool dispatch of the per-shard vector kernels;
* :mod:`~repro.storage.adapter` — the *only* place that branches on the
  backend: :class:`~repro.matching.paths.PathMatcher` delegates its whole
  expansion surface to one adapter, so the evaluation fixpoints above are
  engine-free;
* :mod:`~repro.storage.snapshot` — pinned MVCC snapshots:
  :class:`~repro.storage.snapshot.StoreSnapshot` (an immutable base +
  overlay-slice + attribute-table triple that later mutations and
  compactions can never invalidate) and
  :class:`~repro.storage.snapshot.SnapshotGraph` (its read-only graph
  facade), obtained through ``OverlayCsrStore.pin_snapshot``.

See ARCHITECTURE.md for the full layer stack and the overlay compaction
lifecycle.
"""

from repro.storage.base import GraphStore
from repro.storage.dict_store import JOURNAL_CAPACITY, DictStore
from repro.storage.overlay import OverlayCsrStore
from repro.storage.partition import PartitionedStore
from repro.storage.snapshot import SnapshotGraph, StoreSnapshot

__all__ = [
    "GraphStore",
    "DictStore",
    "OverlayCsrStore",
    "PartitionedStore",
    "StoreSnapshot",
    "SnapshotGraph",
    "JOURNAL_CAPACITY",
]
