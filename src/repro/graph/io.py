"""Serialisation helpers for data graphs.

Two formats are supported:

* **JSON** — a single document with ``nodes`` (id + attributes) and ``edges``
  (source, target, colour); lossless for JSON-representable attribute values.
* **Edge list** — a plain-text format with one ``source target colour`` triple
  per line; node attributes are not stored.  ``.csv`` files use commas, any
  other extension tabs / whitespace.

:func:`load_edge_list` materialises a full :class:`DataGraph`;
:func:`iter_edge_chunks` is the streaming alternative for files too large
for that — it yields bounded lists of interned string triples, never holding
more than one chunk of Python objects at a time, and is what the partition
ingest path (:mod:`repro.datasets.ingest`) is built on.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterator, List, Tuple, Union

from repro.exceptions import GraphError
from repro.graph.data_graph import DataGraph
from repro.session.defaults import INGEST_CHUNK_EDGES

PathLike = Union[str, Path]

EdgeTriple = Tuple[str, str, str]


def to_json_dict(graph: DataGraph) -> dict:
    """Convert a graph into a JSON-serialisable dictionary."""
    return {
        "name": graph.name,
        "nodes": [
            {"id": node, "attributes": dict(graph.attributes(node))}
            for node in graph.nodes()
        ],
        "edges": [
            {"source": edge.source, "target": edge.target, "color": edge.color}
            for edge in graph.edges()
        ],
    }


def from_json_dict(document: dict) -> DataGraph:
    """Rebuild a graph from :func:`to_json_dict` output."""
    try:
        graph = DataGraph(name=document.get("name", "graph"))
        for node in document["nodes"]:
            graph.add_node(node["id"], **node.get("attributes", {}))
        for edge in document["edges"]:
            graph.add_edge(edge["source"], edge["target"], edge["color"])
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph document: {exc}") from exc
    return graph


def save_json(graph: DataGraph, path: PathLike) -> None:
    """Write a graph to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_json_dict(graph), handle, indent=2, default=str)


def load_json(path: PathLike) -> DataGraph:
    """Read a graph previously written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return from_json_dict(json.load(handle))


def save_edge_list(graph: DataGraph, path: PathLike) -> None:
    """Write ``source target colour`` triples, one per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for edge in graph.edges():
            handle.write(f"{edge.source}\t{edge.target}\t{edge.color}\n")


def iter_edge_chunks(
    path: PathLike, chunk_edges: int = INGEST_CHUNK_EDGES
) -> Iterator[List[EdgeTriple]]:
    """Stream an edge-list (or ``.csv``) file as bounded triple chunks.

    Yields lists of at most ``chunk_edges`` ``(source, target, colour)``
    string triples.  All three fields are interned — node ids and colours
    repeat across millions of lines, so each distinct string is held once
    no matter how often it appears.  Blank lines and ``#`` comments are
    skipped; a malformed line raises :class:`GraphError` with its line
    number.  The final chunk may be short; an empty file yields nothing.
    """
    if chunk_edges < 1:
        raise GraphError("chunk_edges must be positive")
    path = Path(path)
    comma = path.suffix.lower() == ".csv"
    chunk: List[EdgeTriple] = []
    intern = sys.intern
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if comma:
                parts = [part.strip() for part in line.split(",")]
            else:
                parts = line.split("\t") if "\t" in line else line.split()
            if len(parts) != 3 or not all(parts):
                raise GraphError(
                    f"line {line_number}: expected 'source target colour', got {line!r}"
                )
            chunk.append((intern(parts[0]), intern(parts[1]), intern(parts[2])))
            if len(chunk) >= chunk_edges:
                yield chunk
                chunk = []
    if chunk:
        yield chunk


def load_edge_list(path: PathLike, name: str = "graph") -> DataGraph:
    """Read a graph from an edge-list file (no node attributes)."""
    graph = DataGraph(name=name)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t") if "\t" in line else line.split()
            if len(parts) != 3:
                raise GraphError(
                    f"line {line_number}: expected 'source target colour', got {line!r}"
                )
            source, target, color = parts
            graph.add_edge(source, target, color)
    return graph
