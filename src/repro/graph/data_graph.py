"""The core data-graph container.

A :class:`DataGraph` stores

* nodes identified by arbitrary hashable ids, each carrying an attribute
  dictionary (the paper's ``f_A``), and
* directed edges, each carrying a colour symbol (the paper's ``f_C``).

Parallel edges with *different* colours between the same pair of nodes are
allowed (they model multiple relationship types); a duplicate edge with the
same colour is ignored.  Self loops are allowed.

The container maintains forward and reverse adjacency indexed by colour, which
is what the reachability and pattern-matching algorithms traverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import GraphError

NodeId = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed, coloured edge ``source --color--> target``."""

    source: NodeId
    target: NodeId
    color: str

    def __str__(self) -> str:
        return f"{self.source} -{self.color}-> {self.target}"


class DataGraph:
    """Directed graph with attributed nodes and colour-typed edges.

    Parameters
    ----------
    name:
        Optional human-readable name (used by dataset generators and the
        experiment harness when reporting results).
    """

    __slots__ = (
        "name",
        "_attrs",
        "_attr_views",
        "_out",
        "_in",
        "_colors",
        "_num_edges",
        "_version",
        "_attrs_version",
        "_edges_version",
        "_color_versions",
        "__weakref__",
    )

    def __init__(self, name: str = "graph"):
        self.name = name
        self._attrs: Dict[NodeId, Dict[str, Any]] = {}
        # One long-lived read-only proxy per node, returned by attributes();
        # it tracks the underlying dict, so it is created once, not per call.
        self._attr_views: Dict[NodeId, Mapping[str, Any]] = {}
        # _out[u][color] = set of successors via edges of that colour
        self._out: Dict[NodeId, Dict[str, Set[NodeId]]] = {}
        self._in: Dict[NodeId, Dict[str, Set[NodeId]]] = {}
        self._colors: Set[str] = set()
        self._num_edges = 0
        # Bumped on every topology change; lets compiled snapshots detect staleness.
        self._version = 0
        # Bumped on attribute updates to existing nodes; cheaper to react to
        # than a topology change (snapshots only flush their scan memos).
        self._attrs_version = 0
        # Bumped on every *edge* change (add_edge/remove_edge) — unlike
        # _version it ignores pure node additions, so wildcard BFS memos
        # survive them.  _color_versions refines it per colour: a memoised
        # single-colour search stays valid until an edge of *that* colour
        # changes, which is what lets PathMatcher keep caches warm across
        # updates that cannot affect them.
        self._edges_version = 0
        self._color_versions: Dict[str, int] = {}

    # -- construction ----------------------------------------------------------

    def add_node(self, node: NodeId, **attributes: Any) -> NodeId:
        """Add a node (or update the attributes of an existing one)."""
        if node not in self._attrs:
            attrs: Dict[str, Any] = {}
            self._attrs[node] = attrs
            self._attr_views[node] = MappingProxyType(attrs)
            self._out[node] = {}
            self._in[node] = {}
            self._version += 1
            # A new node is a new attribute row: memoised predicate scans
            # (and any donor-shared scan cache) must not survive it — a
            # removed-and-re-added node can otherwise resurrect its old
            # attributes in scan results.
            self._attrs_version += 1
        elif attributes:
            # Attribute changes invalidate memoised predicate scans only.
            self._attrs_version += 1
        self._attrs[node].update(attributes)
        return node

    def add_edge(self, source: NodeId, target: NodeId, color: str) -> Edge:
        """Add a directed edge of the given colour, creating nodes as needed."""
        if not isinstance(color, str) or not color:
            raise GraphError(f"edge colour must be a non-empty string, got {color!r}")
        self.add_node(source)
        self.add_node(target)
        bucket = self._out[source].setdefault(color, set())
        if target not in bucket:
            bucket.add(target)
            self._in[target].setdefault(color, set()).add(source)
            self._colors.add(color)
            self._num_edges += 1
            self._version += 1
            self._edges_version += 1
            self._color_versions[color] = self._color_versions.get(color, 0) + 1
        return Edge(source, target, color)

    def add_edges_from(self, edges: Iterable[Tuple[NodeId, NodeId, str]]) -> None:
        """Bulk-add ``(source, target, color)`` triples."""
        for source, target, color in edges:
            self.add_edge(source, target, color)

    def remove_edge(self, source: NodeId, target: NodeId, color: str) -> None:
        """Remove one coloured edge; raises :class:`GraphError` if absent."""
        try:
            self._out[source][color].remove(target)
            self._in[target][color].remove(source)
        except KeyError as exc:
            raise GraphError(f"edge {source}-{color}->{target} does not exist") from exc
        self._num_edges -= 1
        self._version += 1
        self._edges_version += 1
        self._color_versions[color] = self._color_versions.get(color, 0) + 1
        if not self._out[source][color]:
            del self._out[source][color]
        if not self._in[target][color]:
            del self._in[target][color]

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all incident edges."""
        if node not in self._attrs:
            raise GraphError(f"node {node!r} does not exist")
        for color, targets in list(self._out[node].items()):
            for target in list(targets):
                self.remove_edge(node, target, color)
        for color, sources in list(self._in[node].items()):
            for source in list(sources):
                self.remove_edge(source, node, color)
        del self._attrs[node]
        del self._attr_views[node]
        del self._out[node]
        del self._in[node]
        self._version += 1
        # The attribute table lost a row; see add_node.
        self._attrs_version += 1

    # -- inspection ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._attrs)

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every topology mutation.

        Compiled snapshots (:mod:`repro.graph.csr`) record the version they
        were built from and are recompiled transparently when it moves on.
        """
        return self._version

    @property
    def attrs_version(self) -> int:
        """Monotonic counter bumped whenever the attribute table changes:
        :meth:`add_node` updating an existing node's attributes, a node being
        created, or a node being removed.

        Snapshots react by flushing their memoised predicate scans (for an
        attribute-only update, no CSR recompile happens — the topology is
        untouched).  Mappings returned by :meth:`attributes` are read-only
        views, so this counter cannot be bypassed.
        """
        return self._attrs_version

    @property
    def edges_version(self) -> int:
        """Monotonic counter bumped on every edge addition or removal.

        Coarser than :meth:`color_version` (any colour bumps it) but finer
        than :attr:`version` (node additions leave it alone): the tag for
        memoised *wildcard* searches, which see every edge but no attribute.
        """
        return self._edges_version

    def color_version(self, color: str) -> int:
        """Monotonic counter bumped when an edge of ``color`` is added/removed.

        Never-seen colours report 0.  :class:`~repro.matching.paths.PathMatcher`
        tags its per-colour BFS memos with this counter, so a mutation of one
        colour leaves the memos of every other colour warm and valid.
        """
        return self._color_versions.get(color, 0)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def colors(self) -> FrozenSet[str]:
        """The edge-colour alphabet Σ of this graph."""
        return frozenset(self._colors)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids."""
        return iter(self._attrs)

    def has_node(self, node: NodeId) -> bool:
        return node in self._attrs

    def has_edge(self, source: NodeId, target: NodeId, color: Optional[str] = None) -> bool:
        """True if an edge exists (of the given colour, or of any colour)."""
        table = self._out.get(source)
        if table is None:
            return False
        if color is not None:
            return target in table.get(color, ())
        return any(target in targets for targets in table.values())

    def attributes(self, node: NodeId) -> Mapping[str, Any]:
        """The attribute tuple ``f_A(node)`` (a read-only live view).

        Update attributes through :meth:`add_node` — that keeps the
        ``attrs_version`` counter honest, which the compiled snapshots rely
        on to invalidate memoised predicate scans.  Mutating the returned
        mapping raises ``TypeError``.
        """
        try:
            return self._attr_views[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} does not exist") from exc

    def get_attribute(self, node: NodeId, name: str, default: Any = None) -> Any:
        return self.attributes(node).get(name, default)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        for source, table in self._out.items():
            for color, targets in table.items():
                for target in targets:
                    yield Edge(source, target, color)

    def adjacency(self) -> Iterator[Tuple[NodeId, Mapping[str, Set[NodeId]]]]:
        """Iterate ``(node, {colour: successor set})`` rows directly.

        The bulk-export path used by graph compilation
        (:mod:`repro.graph.csr`): one row per node, no per-edge
        :class:`Edge` allocation.  Callers must not mutate the yielded sets.
        """
        return iter(self._out.items())

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """Out-neighbours of ``node`` (restricted to one colour if given)."""
        table = self._out.get(node)
        if table is None:
            raise GraphError(f"node {node!r} does not exist")
        if color is not None:
            return set(table.get(color, ()))
        result: Set[NodeId] = set()
        for targets in table.values():
            result |= targets
        return result

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """In-neighbours of ``node`` (restricted to one colour if given)."""
        table = self._in.get(node)
        if table is None:
            raise GraphError(f"node {node!r} does not exist")
        if color is not None:
            return set(table.get(color, ()))
        result: Set[NodeId] = set()
        for sources in table.values():
            result |= sources
        return result

    def out_edges(self, node: NodeId) -> Iterator[Edge]:
        """Iterate over edges leaving ``node``."""
        table = self._out.get(node)
        if table is None:
            raise GraphError(f"node {node!r} does not exist")
        for color, targets in table.items():
            for target in targets:
                yield Edge(node, target, color)

    def out_degree(self, node: NodeId) -> int:
        return sum(len(t) for t in self._out.get(node, {}).values())

    def in_degree(self, node: NodeId) -> int:
        return sum(len(s) for s in self._in.get(node, {}).values())

    def successor_colors(self, node: NodeId) -> Set[str]:
        """Colours appearing on edges leaving ``node``."""
        return {c for c, targets in self._out.get(node, {}).items() if targets}

    def predecessor_colors(self, node: NodeId) -> Set[str]:
        """Colours appearing on edges entering ``node``."""
        return {c for c, sources in self._in.get(node, {}).items() if sources}

    # -- convenience -----------------------------------------------------------

    def nodes_matching(self, predicate) -> List[NodeId]:
        """All nodes whose attributes satisfy ``predicate`` (a callable or a
        :class:`~repro.query.predicates.Predicate`)."""
        check = predicate.matches if hasattr(predicate, "matches") else predicate
        return [node for node, attrs in self._attrs.items() if check(attrs)]

    def subgraph(self, nodes: Iterable[NodeId]) -> "DataGraph":
        """The induced subgraph over ``nodes`` (attributes are shallow-copied)."""
        keep = set(nodes)
        result = DataGraph(name=f"{self.name}-sub")
        for node in keep:
            result.add_node(node, **dict(self.attributes(node)))
        for edge in self.edges():
            if edge.source in keep and edge.target in keep:
                result.add_edge(edge.source, edge.target, edge.color)
        return result

    def copy(self) -> "DataGraph":
        """A deep-enough copy (attribute dicts are copied, values shared)."""
        result = DataGraph(name=self.name)
        for node, attrs in self._attrs.items():
            result.add_node(node, **dict(attrs))
        for edge in self.edges():
            result.add_edge(edge.source, edge.target, edge.color)
        return result

    def __contains__(self, node: NodeId) -> bool:
        return node in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __repr__(self) -> str:
        return (
            f"DataGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, colors={sorted(self._colors)})"
        )
