"""The core data-graph container.

A :class:`DataGraph` stores

* nodes identified by arbitrary hashable ids, each carrying an attribute
  dictionary (the paper's ``f_A``), and
* directed edges, each carrying a colour symbol (the paper's ``f_C``).

Parallel edges with *different* colours between the same pair of nodes are
allowed (they model multiple relationship types); a duplicate edge with the
same colour is ignored.  Self loops are allowed.

Topology lives in the **storage layer**: every graph owns a
:class:`~repro.storage.dict_store.DictStore` (the authoritative forward and
reverse adjacency indexed by colour, plus the mutation journal), and this
class is a thin facade over it — it keeps the attribute table and delegates
every topology operation.  Derived stores such as
:class:`~repro.storage.overlay.OverlayCsrStore` (the array-backed view behind
the ``csr`` evaluation engine, obtained via :meth:`overlay_store`) replay the
journal to follow mutations in O(delta) instead of recompiling per update.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import GraphError
from repro.storage.dict_store import DictStore, JournalEntry

NodeId = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed, coloured edge ``source --color--> target``."""

    source: NodeId
    target: NodeId
    color: str

    def __str__(self) -> str:
        return f"{self.source} -{self.color}-> {self.target}"


class DataGraph:
    """Directed graph with attributed nodes and colour-typed edges.

    Parameters
    ----------
    name:
        Optional human-readable name (used by dataset generators and the
        experiment harness when reporting results).
    """

    __slots__ = (
        "name",
        "_attrs",
        "_attr_views",
        "_store",
        "_overlay",
        "_partitioned",
        "_attrs_version",
        "__weakref__",
    )

    def __init__(self, name: str = "graph"):
        self.name = name
        self._attrs: Dict[NodeId, Dict[str, Any]] = {}
        # One long-lived read-only proxy per node, returned by attributes();
        # it tracks the underlying dict, so it is created once, not per call.
        self._attr_views: Dict[NodeId, Mapping[str, Any]] = {}
        # The authoritative topology store (adjacency, versions, journal).
        self._store = DictStore()
        # The derived array-backed store, created lazily by overlay_store().
        self._overlay = None
        # The sharded store, created lazily by partitioned_store().
        self._partitioned = None
        # Bumped on attribute updates to existing nodes; cheaper to react to
        # than a topology change (snapshots only flush their scan memos).
        self._attrs_version = 0

    # -- construction ----------------------------------------------------------

    def add_node(self, node: NodeId, **attributes: Any) -> NodeId:
        """Add a node (or update the attributes of an existing one)."""
        if node not in self._attrs:
            attrs: Dict[str, Any] = {}
            self._attrs[node] = attrs
            self._attr_views[node] = MappingProxyType(attrs)
            self._store.add_node(node)
            # A new node is a new attribute row: memoised predicate scans
            # (and any donor-shared scan cache) must not survive it — a
            # removed-and-re-added node can otherwise resurrect its old
            # attributes in scan results.
            self._attrs_version += 1
        elif attributes:
            # Attribute changes invalidate memoised predicate scans only.
            self._attrs_version += 1
        self._attrs[node].update(attributes)
        return node

    def add_edge(self, source: NodeId, target: NodeId, color: str) -> Edge:
        """Add a directed edge of the given colour, creating nodes as needed."""
        if not isinstance(color, str) or not color:
            raise GraphError(f"edge colour must be a non-empty string, got {color!r}")
        self.add_node(source)
        self.add_node(target)
        self._store.add_edge(source, target, color)
        return Edge(source, target, color)

    def add_edges_from(self, edges: Iterable[Tuple[NodeId, NodeId, str]]) -> None:
        """Bulk-add ``(source, target, color)`` triples."""
        for source, target, color in edges:
            self.add_edge(source, target, color)

    def remove_edge(self, source: NodeId, target: NodeId, color: str) -> None:
        """Remove one coloured edge; raises :class:`GraphError` if absent."""
        self._store.remove_edge(source, target, color)

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all incident edges.

        Version contract (relied on by store overlays and matcher memos):
        every incident edge removal bumps ``edges_version`` and its colour's
        version, and the node removal itself bumps ``version`` and
        ``edges_version`` once more unconditionally — removing an *isolated*
        node still invalidates wildcard memos and overlay sync points.  The
        attribute table loses a row, so ``attrs_version`` bumps too (see
        :meth:`add_node`).
        """
        if node not in self._attrs:
            raise GraphError(f"node {node!r} does not exist")
        self._store.remove_node(node)
        del self._attrs[node]
        del self._attr_views[node]
        self._attrs_version += 1

    # -- storage layer ---------------------------------------------------------

    @property
    def store(self) -> DictStore:
        """The authoritative :class:`~repro.storage.dict_store.DictStore`."""
        return self._store

    def overlay_store(self):
        """The graph's derived :class:`~repro.storage.overlay.OverlayCsrStore`.

        Created on first use and kept for the graph's lifetime; the store
        follows mutations by replaying the journal (see
        :meth:`journal_since`), so one overlay serves every CSR-engine
        matcher over this graph.
        """
        if self._overlay is None:
            # Imported lazily: overlay -> graph.csr -> this module.
            from repro.storage.overlay import OverlayCsrStore

            self._overlay = OverlayCsrStore(self)
        return self._overlay

    @property
    def active_overlay_store(self):
        """The overlay store if one has been created, else ``None``.

        Unlike :meth:`overlay_store` this never creates one — planners use
        it to surface overlay occupancy without forcing dict-engine graphs
        to pay for a CSR base.
        """
        return self._overlay

    def partitioned_store(self, shards=None, parallelism=None, partition=None):
        """The graph's sharded :class:`~repro.storage.partition.PartitionedStore`.

        Created on first use with the package defaults and kept for the
        graph's lifetime, like :meth:`overlay_store`.  Passing a ``shards``
        or ``parallelism`` differing from the live store's — or any
        explicit ``partition`` spec — replaces the store with a freshly
        partitioned one (re-partitioning is a rebuild by design).
        """
        # Imported lazily: partition -> graph.csr -> this module.
        from repro.storage.partition import PartitionedStore

        store = self._partitioned
        stale = (
            store is None
            or (shards is not None and shards != store.shard_count)
            or (parallelism is not None and parallelism != store.parallelism)
            or partition is not None
        )
        if stale:
            kwargs = {}
            if shards is not None:
                kwargs["shards"] = shards
            if parallelism is not None:
                kwargs["parallelism"] = parallelism
            if partition is not None:
                kwargs["partition"] = partition
            store = PartitionedStore.from_graph(self, **kwargs)
            self._partitioned = store
        return store

    @property
    def active_partitioned_store(self):
        """The partitioned store if one has been created, else ``None``.

        Never creates one — planners use it to surface shard statistics
        without forcing unsharded graphs to pay for a partition pass.
        """
        return self._partitioned

    def journal_since(self, version: int) -> Optional[List[JournalEntry]]:
        """Topology changes after ``version`` (``None`` if journal truncated)."""
        return self._store.journal_since(version)

    # -- inspection ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._attrs)

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every topology mutation.

        Compiled snapshots (:mod:`repro.graph.csr`) record the version they
        were built from and are recompiled transparently when it moves on.
        """
        return self._store.version

    @property
    def attrs_version(self) -> int:
        """Monotonic counter bumped whenever the attribute table changes:
        :meth:`add_node` updating an existing node's attributes, a node being
        created, or a node being removed.

        Snapshots react by flushing their memoised predicate scans (for an
        attribute-only update, no CSR recompile happens — the topology is
        untouched).  Mappings returned by :meth:`attributes` are read-only
        views, so this counter cannot be bypassed.
        """
        return self._attrs_version

    @property
    def edges_version(self) -> int:
        """Monotonic counter bumped on every edge addition or removal (and
        once more by :meth:`remove_node`, even for isolated nodes).

        Coarser than :meth:`color_version` (any colour bumps it) but finer
        than :attr:`version` (node additions leave it alone): the tag for
        memoised *wildcard* searches, which see every edge but no attribute.
        """
        return self._store.edges_version

    def color_version(self, color: str) -> int:
        """Monotonic counter bumped when an edge of ``color`` is added/removed.

        Never-seen colours report 0.  :class:`~repro.matching.paths.PathMatcher`
        tags its per-colour BFS memos with this counter, so a mutation of one
        colour leaves the memos of every other colour warm and valid.
        """
        return self._store.color_version(color)

    @property
    def num_edges(self) -> int:
        return self._store.num_edges

    @property
    def colors(self) -> FrozenSet[str]:
        """The edge-colour alphabet Σ of this graph."""
        return frozenset(self._store.colors)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids."""
        return iter(self._attrs)

    def has_node(self, node: NodeId) -> bool:
        return node in self._attrs

    def has_edge(self, source: NodeId, target: NodeId, color: Optional[str] = None) -> bool:
        """True if an edge exists (of the given colour, or of any colour)."""
        return self._store.has_edge(source, target, color)

    def attributes(self, node: NodeId) -> Mapping[str, Any]:
        """The attribute tuple ``f_A(node)`` (a read-only live view).

        Update attributes through :meth:`add_node` — that keeps the
        ``attrs_version`` counter honest, which the compiled snapshots rely
        on to invalidate memoised predicate scans.  Mutating the returned
        mapping raises ``TypeError``.
        """
        try:
            return self._attr_views[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} does not exist") from exc

    def get_attribute(self, node: NodeId, name: str, default: Any = None) -> Any:
        return self.attributes(node).get(name, default)

    def attribute_views(self) -> Mapping[NodeId, Mapping[str, Any]]:
        """The whole attribute table as ``{node: read-only view}``.

        The bulk-capture path used by storage snapshots
        (:mod:`repro.storage.snapshot`): one pass over the live table
        without per-node :meth:`attributes` lookups.  The returned mapping
        is a read-only proxy of the live table — snapshot builders copy the
        rows they capture.
        """
        return MappingProxyType(self._attr_views)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        for source, table in self._store.adjacency():
            for color, targets in table.items():
                for target in targets:
                    yield Edge(source, target, color)

    def adjacency(self) -> Iterator[Tuple[NodeId, Mapping[str, Set[NodeId]]]]:
        """Iterate ``(node, {colour: successor set})`` rows directly.

        The bulk-export path used by graph compilation
        (:mod:`repro.graph.csr`): one row per node, no per-edge
        :class:`Edge` allocation.  Callers must not mutate the yielded sets.
        """
        return self._store.adjacency()

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """Out-neighbours of ``node`` (restricted to one colour if given)."""
        return self._store.successors(node, color)

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """In-neighbours of ``node`` (restricted to one colour if given)."""
        return self._store.predecessors(node, color)

    def out_edges(self, node: NodeId) -> Iterator[Edge]:
        """Iterate over edges leaving ``node``."""
        for color, targets in self._store.out_row(node).items():
            for target in targets:
                yield Edge(node, target, color)

    def out_degree(self, node: NodeId) -> int:
        return self._store.out_degree(node)

    def in_degree(self, node: NodeId) -> int:
        return self._store.in_degree(node)

    def successor_colors(self, node: NodeId) -> Set[str]:
        """Colours appearing on edges leaving ``node``."""
        return self._store.successor_colors(node)

    def predecessor_colors(self, node: NodeId) -> Set[str]:
        """Colours appearing on edges entering ``node``."""
        return self._store.predecessor_colors(node)

    # -- convenience -----------------------------------------------------------

    def nodes_matching(self, predicate) -> List[NodeId]:
        """All nodes whose attributes satisfy ``predicate`` (a callable or a
        :class:`~repro.query.predicates.Predicate`)."""
        check = predicate.matches if hasattr(predicate, "matches") else predicate
        return [node for node, attrs in self._attrs.items() if check(attrs)]

    def subgraph(self, nodes: Iterable[NodeId]) -> "DataGraph":
        """The induced subgraph over ``nodes`` (attributes are shallow-copied)."""
        keep = set(nodes)
        result = DataGraph(name=f"{self.name}-sub")
        for node in keep:
            result.add_node(node, **dict(self.attributes(node)))
        for edge in self.edges():
            if edge.source in keep and edge.target in keep:
                result.add_edge(edge.source, edge.target, edge.color)
        return result

    def copy(self) -> "DataGraph":
        """A deep-enough copy (attribute dicts are copied, values shared)."""
        result = DataGraph(name=self.name)
        for node, attrs in self._attrs.items():
            result.add_node(node, **dict(attrs))
        for edge in self.edges():
            result.add_edge(edge.source, edge.target, edge.color)
        return result

    def __contains__(self, node: NodeId) -> bool:
        return node in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __repr__(self) -> str:
        return (
            f"DataGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, colors={sorted(self._store.colors)})"
        )
