"""Compiled CSR (compressed sparse row) snapshot of a :class:`DataGraph`.

The dict-of-dict-of-set adjacency of :class:`~repro.graph.data_graph.DataGraph`
is flexible but pays hashing and set-allocation costs on every hop.  This
module freezes a graph into flat integer arrays so the hot evaluation loops
(:mod:`repro.matching.csr_engine`) touch nothing but contiguous memory:

* node ids are interned into dense indices ``0 … n-1`` (``node_index`` /
  ``node_id`` translate both ways);
* edge colours are interned into dense colour ids over the sorted alphabet;
* for every colour there is a forward and a reverse CSR layer — an
  ``offsets`` array of length ``n+1`` and a flat ``targets`` array holding the
  sorted neighbour indices — plus a node-membership bitmap (``bytearray``)
  marking the nodes incident to at least one edge of that colour;
* one extra pair of layers stores the de-duplicated "any colour" (wildcard)
  adjacency, so ``_``-atoms expand without unioning per-colour sets.

A snapshot is immutable topology-wise but shares the *live* attribute
dictionaries of its source graph, so predicate scans
(:meth:`CompiledGraph.matching_indices`) always see current attribute values.
:func:`compiled_snapshot` caches one snapshot per graph (weakly, keyed by the
graph object) and recompiles automatically when the graph's topology
``version`` moves on — this is what ``engine="auto"`` rides on.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Hashable, Iterator, List, Mapping, Optional, Set, Tuple
from weakref import WeakKeyDictionary, ref

from repro.exceptions import GraphError
from repro.graph.data_graph import DataGraph

NodeId = Hashable

#: Pseudo colour id selecting the "any colour" (wildcard) adjacency layer.
ANY_COLOR = -1


class CsrLayer:
    """One adjacency layer: CSR offsets, flat neighbour array, membership bitmap."""

    __slots__ = ("offsets", "targets", "mask", "_view", "_np")

    def __init__(self, offsets: array, targets: array, mask: bytearray):
        self.offsets = offsets
        self.targets = targets
        self.mask = mask
        self._view = memoryview(targets)
        # Lazily populated by repro.kernels.numpy_kernel: index-typed copies
        # of (offsets, targets), cached because layers are immutable.
        self._np = None

    def neighbors(self, index: int) -> memoryview:
        """Neighbour indices of ``index`` as a zero-copy slice."""
        return self._view[self.offsets[index]:self.offsets[index + 1]]

    def degree(self, index: int) -> int:
        return self.offsets[index + 1] - self.offsets[index]

    def np_views(self):
        """``(offsets, targets, mask)`` as zero-copy numpy views.

        The arrays share memory with the layer's ``array('i')`` buffers and
        membership ``bytearray`` — no copies, valid for the layer's lifetime.
        Requires numpy (the vector kernels guard the import; callers that
        reach this without numpy get the ImportError they asked for).
        """
        import numpy as np

        return (
            np.frombuffer(self.offsets, dtype=np.intc),
            np.frombuffer(self.targets, dtype=np.intc),
            np.frombuffer(self.mask, dtype=np.uint8),
        )

    @property
    def num_edges(self) -> int:
        return len(self.targets)


def _build_layer(num_nodes: int, buckets: Dict[int, List[int]], dedup: bool = False) -> CsrLayer:
    """Pack per-node neighbour lists into a CSR layer (neighbours sorted)."""
    zero = array("i", [0])
    offsets = zero * (num_nodes + 1)
    running = 0
    for index in range(num_nodes):
        offsets[index] = running
        lst = buckets.get(index)
        if lst:
            running += len(set(lst)) if dedup else len(lst)
    offsets[num_nodes] = running

    targets = zero * running
    mask = bytearray(num_nodes)
    for index, lst in buckets.items():
        neighbours = sorted(set(lst)) if dedup else sorted(lst)
        if not neighbours:
            continue
        start = offsets[index]
        targets[start:start + len(neighbours)] = array("i", neighbours)
        mask[index] = 1
    return CsrLayer(offsets, targets, mask)


class CompiledGraph:
    """An integer-indexed, frozen CSR view of a :class:`DataGraph`.

    Instances are built with :func:`compile_graph` (always fresh) or
    :func:`compiled_snapshot` (cached per graph).  The topology is a snapshot:
    later mutations of the source graph are not reflected (but are *detected*
    by :func:`compiled_snapshot` through the graph's ``version`` counter).
    """

    __slots__ = (
        "name",
        "source_version",
        "source_attrs_version",
        "source_edges_version",
        "_source_color_versions",
        "_ids",
        "_index",
        "_attrs",
        "_colors",
        "_color_index",
        "_fwd",
        "_rev",
        "_fwd_any",
        "_rev_any",
        "_num_edges",
        "_engine",
        "_scan_cache",
        "_source",
    )

    def __init__(self, graph: DataGraph, reuse_from: Optional["CompiledGraph"] = None):
        # Imported here (not at module level) to keep repro.graph importable
        # without dragging in repro.matching — and to avoid the import cycle
        # graph.csr -> matching.cache -> matching.csr_engine -> graph.csr.
        from repro.matching.cache import LruCache

        self.name = graph.name
        self.source_version = graph.version
        self.source_attrs_version = graph.attrs_version
        self.source_edges_version = graph.edges_version
        ids: Tuple[NodeId, ...] = tuple(graph.nodes())
        self._ids = ids
        self._index: Dict[NodeId, int] = {node: i for i, node in enumerate(ids)}
        self._attrs: Tuple[Mapping[str, Any], ...] = tuple(graph.attributes(node) for node in ids)
        colors = tuple(sorted(graph.colors))
        self._colors = colors
        self._color_index: Dict[str, int] = {color: k for k, color in enumerate(colors)}
        # Per-colour edge versions at compile time: lets a successor snapshot
        # decide which memoised expansions are still valid (colour untouched),
        # and lets this compile reuse the predecessor's untouched layers.
        self._source_color_versions: Dict[str, int] = {
            color: graph.color_version(color) for color in colors
        }

        n = len(ids)
        index = self._index
        # Layers of colours whose edges did not change since ``reuse_from``
        # was compiled are adopted as-is (they are immutable), provided the
        # node index space is identical — incremental workloads recompile a
        # snapshot per update, but each update only invalidates one colour.
        reused: Dict[str, Tuple[CsrLayer, CsrLayer]] = {}
        if reuse_from is not None and reuse_from._ids == ids:
            for color in colors:
                old_id = reuse_from.color_id(color)
                if old_id is None or old_id == ANY_COLOR:
                    continue
                if reuse_from.source_color_version(color) == self._source_color_versions[color]:
                    reused[color] = (
                        reuse_from._fwd[old_id],
                        reuse_from._rev[old_id],
                    )

        rebuild = {k for k, color in enumerate(colors) if color not in reused}
        fwd_buckets: Dict[int, Dict[int, List[int]]] = {k: {} for k in rebuild}
        rev_buckets: Dict[int, Dict[int, List[int]]] = {k: {} for k in rebuild}
        color_index = self._color_index
        if rebuild:
            for source, table in graph.adjacency():
                u = index[source]
                for color, targets in table.items():
                    k = color_index[color]
                    if k not in rebuild:
                        continue
                    targets_idx = [index[target] for target in targets]
                    fwd_buckets[k][u] = targets_idx
                    bucket = rev_buckets[k]
                    for v in targets_idx:
                        bucket.setdefault(v, []).append(u)

        fwd: List[CsrLayer] = []
        rev: List[CsrLayer] = []
        for k, color in enumerate(colors):
            if color in reused:
                fwd_layer, rev_layer = reused[color]
            else:
                fwd_layer = _build_layer(n, fwd_buckets[k])
                rev_layer = _build_layer(n, rev_buckets[k])
            fwd.append(fwd_layer)
            rev.append(rev_layer)
        self._fwd = tuple(fwd)
        self._rev = tuple(rev)
        # The "any colour" layers are built lazily on first wildcard access
        # (from the frozen per-colour layers, so they always reflect this
        # snapshot); an unchanged edge set lets them be adopted directly.
        if (
            reuse_from is not None
            and reuse_from._ids == ids
            and reuse_from.source_edges_version == self.source_edges_version
        ):
            self._fwd_any = reuse_from._fwd_any
            self._rev_any = reuse_from._rev_any
        else:
            self._fwd_any = None
            self._rev_any = None
        self._num_edges = sum(layer.num_edges for layer in self._fwd)
        self._engine = None
        # Predicate scans depend on node attributes only, never on edges:
        # when the node set and attrs_version are unchanged, the donor's
        # memoised scans remain valid verbatim, so the cache is shared.
        if (
            reuse_from is not None
            and reuse_from._ids == ids
            and reuse_from.source_attrs_version == self.source_attrs_version
        ):
            self._scan_cache = reuse_from._scan_cache
        else:
            self._scan_cache = LruCache(4096)
        # Weak handle on the source graph: lets matching_indices notice
        # attribute updates (attrs_version) and flush the scan memo lazily,
        # for snapshots built via compile_graph and compiled_snapshot alike.
        self._source = ref(graph)

    def _any_layer(self, reverse: bool) -> CsrLayer:
        """The lazily built de-duplicated "any colour" layer."""
        existing = self._rev_any if reverse else self._fwd_any
        if existing is not None:
            return existing
        layers = self._rev if reverse else self._fwd
        n = len(self._ids)
        buckets: Dict[int, List[int]] = {}
        for layer in layers:
            offsets = layer.offsets
            view = layer._view
            mask = layer.mask
            for i in range(n):
                if mask[i]:
                    buckets.setdefault(i, []).extend(view[offsets[i]:offsets[i + 1]])
        built = _build_layer(n, buckets, dedup=True)
        if reverse:
            self._rev_any = built
        else:
            self._fwd_any = built
        return built

    # -- id / colour interning --------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        """Number of coloured edges (parallel colours counted separately)."""
        return self._num_edges

    @property
    def colors(self) -> Tuple[str, ...]:
        """The sorted edge-colour alphabet."""
        return self._colors

    @property
    def ids(self) -> Tuple[NodeId, ...]:
        """Dense index -> original node id."""
        return self._ids

    def node_id(self, index: int) -> NodeId:
        return self._ids[index]

    def node_index(self, node: NodeId) -> int:
        try:
            return self._index[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} is not in the compiled graph") from exc

    def has_node(self, node: NodeId) -> bool:
        return node in self._index

    def color_id(self, color: Optional[str]) -> Optional[int]:
        """Dense colour id, :data:`ANY_COLOR` for ``None``, ``None`` if unknown."""
        if color is None:
            return ANY_COLOR
        return self._color_index.get(color)

    def source_color_version(self, color: str) -> int:
        """The source graph's per-colour edge version when this was compiled."""
        return self._source_color_versions.get(color, 0)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, colors={list(self._colors)})"
        )

    # -- index-level adjacency (the engine's hot path) --------------------------

    def layer(self, color_id: int, reverse: bool = False) -> CsrLayer:
        """The CSR layer for one colour id (or :data:`ANY_COLOR`)."""
        if color_id == ANY_COLOR:
            return self._any_layer(reverse)
        return (self._rev if reverse else self._fwd)[color_id]

    def neighbors(self, index: int, color_id: int = ANY_COLOR, reverse: bool = False) -> memoryview:
        """Neighbour indices via one colour layer, as a zero-copy slice."""
        return self.layer(color_id, reverse).neighbors(index)

    def np_views(self, color_id: int = ANY_COLOR, reverse: bool = False):
        """One layer's ``(offsets, targets, mask)`` as zero-copy numpy views."""
        return self.layer(color_id, reverse).np_views()

    # -- id-level views mirroring DataGraph (round-trip / tests) ----------------

    def node_ids(self) -> Iterator[NodeId]:
        return iter(self._ids)

    def attributes(self, index: int) -> Mapping[str, Any]:
        """Attribute mapping of the node at ``index`` (live view)."""
        return self._attrs[index]

    def successors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """Out-neighbours by node id, mirroring :meth:`DataGraph.successors`."""
        return self._neighbor_ids(node, color, reverse=False)

    def predecessors(self, node: NodeId, color: Optional[str] = None) -> Set[NodeId]:
        """In-neighbours by node id, mirroring :meth:`DataGraph.predecessors`."""
        return self._neighbor_ids(node, color, reverse=True)

    def _neighbor_ids(self, node: NodeId, color: Optional[str], reverse: bool) -> Set[NodeId]:
        index = self.node_index(node)
        cid = self.color_id(color)
        if cid is None:
            return set()
        ids = self._ids
        return {ids[j] for j in self.layer(cid, reverse).neighbors(index)}

    def out_degree(self, node: NodeId) -> int:
        index = self.node_index(node)
        return sum(layer.degree(index) for layer in self._fwd)

    def in_degree(self, node: NodeId) -> int:
        index = self.node_index(node)
        return sum(layer.degree(index) for layer in self._rev)

    def successor_colors(self, node: NodeId) -> Set[str]:
        index = self.node_index(node)
        return {c for k, c in enumerate(self._colors) if self._fwd[k].mask[index]}

    def predecessor_colors(self, node: NodeId) -> Set[str]:
        index = self.node_index(node)
        return {c for k, c in enumerate(self._colors) if self._rev[k].mask[index]}

    # -- compiled attribute-predicate scan --------------------------------------

    def matching_indices(self, predicate: Any) -> Tuple[int, ...]:
        """Indices of nodes whose attributes satisfy ``predicate``.

        ``predicate`` may be a :class:`~repro.query.predicates.Predicate`
        (compiled to a fast closure), any object with ``matches``, a plain
        callable over attribute mappings, or ``None`` (all nodes).  Scans for
        :class:`Predicate` objects are memoised per snapshot — structurally
        equal predicates pay the full sweep once; attribute updates through
        ``add_node`` bump the graph's ``attrs_version``, which flushes this
        memo on the next scan (no CSR recompile).
        """
        attrs = self._attrs
        if predicate is None:
            return tuple(range(len(attrs)))
        source = self._source()
        # Lazy refresh is only sound while the topology version still
        # matches: then the attribute views are live and a rescan sees the
        # graph's current values.  On a topology-stale snapshot the captured
        # views may belong to removed nodes — rescanning them is *not*
        # equivalent to the live graph, and advancing the version tag here
        # would let the next recompile wrongly adopt this memo as fresh.
        if (
            source is not None
            and source.attrs_version != self.source_attrs_version
            and source.version == self.source_version
        ):
            self.refresh_attribute_scans(source.attrs_version)
        # Deferred import: repro.query pulls in the whole query package.
        from repro.query.predicates import Predicate

        # Only genuine Predicate objects are compiled *and* memoised — a
        # plain callable that happens to carry a ``compile`` attribute must
        # be called as-is, and duck-typed objects are keyed out of the memo
        # because their equality semantics are unknown.
        cacheable = isinstance(predicate, Predicate)
        if cacheable:
            cached = self._scan_cache.get(predicate)
            if cached is not None:
                return cached
        if hasattr(predicate, "is_true") and predicate.is_true():
            result = tuple(range(len(attrs)))
        else:
            if cacheable:
                check = predicate.compile()
            elif hasattr(predicate, "matches") and callable(predicate.matches):
                check = predicate.matches
            else:
                check = predicate
            result = tuple(i for i in range(len(attrs)) if check(attrs[i]))
        if cacheable:
            self._scan_cache.put(predicate, result)
        return result

    def matching_ids(self, predicate: Any) -> List[NodeId]:
        """Node ids whose attributes satisfy ``predicate`` (insertion order)."""
        ids = self._ids
        return [ids[i] for i in self.matching_indices(predicate)]

    # -- engine handle -----------------------------------------------------------

    def refresh_attribute_scans(self, attrs_version: int) -> None:
        """Flush memoised predicate scans after an attribute-only update.

        The attribute tuples reference the graph's live dictionaries, so the
        data itself is already fresh — only the memo needs dropping.  Invoked
        lazily by :meth:`matching_indices`; no CSR recompile happens.
        """
        self._scan_cache.clear()
        self.source_attrs_version = attrs_version

    def default_engine(self):
        """The shared :class:`~repro.matching.csr_engine.CsrEngine` for this
        snapshot (created lazily; its per-atom caches persist across queries)."""
        if self._engine is None:
            from repro.matching.csr_engine import CsrEngine

            self._engine = CsrEngine(self)
        return self._engine


def compile_graph(graph: DataGraph) -> CompiledGraph:
    """Freeze ``graph`` into a fresh :class:`CompiledGraph`."""
    return CompiledGraph(graph)


_SNAPSHOTS: "WeakKeyDictionary[DataGraph, CompiledGraph]" = WeakKeyDictionary()


def compiled_snapshot(graph: DataGraph) -> CompiledGraph:
    """The cached compiled snapshot of ``graph``, recompiled when stale.

    One snapshot is kept per live graph object (weakly referenced, so graphs
    are not pinned in memory).  The snapshot is reused while the graph's
    topology :attr:`~repro.graph.data_graph.DataGraph.version` is unchanged;
    attribute-only updates (``attrs_version``) just flush the snapshot's
    predicate-scan memo instead of recompiling the CSR arrays.
    """
    cached = _SNAPSHOTS.get(graph)
    if cached is not None and cached.source_version == graph.version:
        return cached
    # A stale predecessor still serves as a layer donor: colours whose edges
    # did not change keep their (immutable) CSR layers instead of being
    # rebuilt — the recompile cost of an update is proportional to the
    # touched colour, not to the whole graph.
    snapshot = CompiledGraph(graph, reuse_from=cached)
    _SNAPSHOTS[graph] = snapshot
    return snapshot
