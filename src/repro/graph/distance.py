"""Colour-aware shortest-distance matrix (Section 4 of the paper).

The matrix-based evaluation methods rely on ``M[v1][v2][c]``: the length of
the shortest path from ``v1`` to ``v2`` using only edges of colour ``c`` (and
one extra "colour" for the wildcard, i.e. paths of arbitrary colours).

The matrix is built with one BFS per (node, colour) pair, which gives the
``O((m+1)|V|² + |V|(|V|+|E|))`` preprocessing cost quoted in the paper, and is
shared by all queries evaluated against the same graph.

Storage is a dictionary of dictionaries per colour rather than a dense numpy
cube: real-world colour-restricted reachability is sparse, so this keeps the
memory footprint proportional to the number of reachable pairs while still
answering lookups in O(1).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from repro.graph.data_graph import DataGraph
from repro.graph.traversal import bfs_distances
from repro.regex.fclass import WILDCARD

NodeId = Hashable


class DistanceMatrix:
    """Shortest per-colour distances between all pairs of nodes.

    Use :func:`build_distance_matrix` to construct one; the class itself only
    provides lookups.
    """

    __slots__ = ("_graph_name", "_colors", "_table")

    def __init__(self, graph_name: str, colors: Iterable[str]):
        self._graph_name = graph_name
        self._colors = frozenset(colors) | {WILDCARD}
        # _table[color][source][target] = shortest distance (>= 1 entries only
        # except the trivial source==source entry which is omitted).
        self._table: Dict[str, Dict[NodeId, Dict[NodeId, int]]] = {
            color: {} for color in self._colors
        }

    @property
    def colors(self) -> frozenset:
        return self._colors

    @property
    def graph_name(self) -> str:
        return self._graph_name

    def _row(self, source: NodeId, color: str) -> Dict[NodeId, int]:
        return self._table.get(color, {}).get(source, {})

    def set_row(self, source: NodeId, color: str, distances: Dict[NodeId, int]) -> None:
        """Record the BFS result for one (source, colour) pair."""
        self._table.setdefault(color, {})[source] = distances

    def distance(
        self, source: NodeId, target: NodeId, color: Optional[str] = None
    ) -> Optional[int]:
        """Shortest distance via edges of ``color`` (wildcard when ``None``).

        Returns ``None`` when ``target`` is unreachable from ``source`` using
        only that colour.  The distance from a node to itself is 0.
        """
        key = WILDCARD if color is None else color
        if source == target:
            return 0
        return self._row(source, key).get(target)

    def reachable_within(
        self,
        source: NodeId,
        target: NodeId,
        color: Optional[str] = None,
        max_hops: Optional[int] = None,
        min_hops: int = 1,
    ) -> bool:
        """True if a path of the given colour exists with length in
        ``[min_hops, max_hops]`` (``max_hops=None`` means unbounded)."""
        key = WILDCARD if color is None else color
        if source == target and min_hops <= 0:
            return True
        dist = self._row(source, key).get(target)
        if source == target:
            # A non-empty path from a node to itself requires a cycle; the BFS
            # rows store only shortest positive distances to *other* nodes, so
            # we look for a successor that reaches the node back.
            dist = self._cycle_length(source, key)
        if dist is None:
            return False
        if dist < min_hops:
            # Shortest path is shorter than required, but longer walks may
            # still satisfy the minimum: with the F-class, min_hops is only
            # ever 1, so this branch is defensive.
            return max_hops is None or dist <= max_hops
        return max_hops is None or dist <= max_hops

    def _cycle_length(self, node: NodeId, color: str) -> Optional[int]:
        """Length of the shortest non-empty cycle through ``node``.

        Cycle lengths are pre-computed by :func:`build_distance_matrix` and
        stored as the (otherwise unused) ``node -> node`` entry of each row.
        """
        return self._row(node, color).get(node)

    def memory_entries(self) -> int:
        """Number of stored (source, target, colour) distance entries."""
        return sum(
            len(row) for rows in self._table.values() for row in rows.values()
        )

    def __repr__(self) -> str:
        return (
            f"DistanceMatrix(graph={self._graph_name!r}, "
            f"colors={sorted(self._colors)}, entries={self.memory_entries()})"
        )


def build_distance_matrix(
    graph: DataGraph, colors: Optional[Iterable[str]] = None
) -> DistanceMatrix:
    """Build the per-colour all-pairs shortest-distance matrix of a graph.

    Parameters
    ----------
    graph:
        The data graph.
    colors:
        Restrict the matrix to these colours (plus the wildcard); defaults to
        every colour appearing in the graph.
    """
    palette = frozenset(colors) if colors is not None else graph.colors
    matrix = DistanceMatrix(graph.name, palette)
    for node in graph.nodes():
        for color in palette:
            matrix.set_row(node, color, _positive_row(graph, node, color))
        matrix.set_row(node, WILDCARD, _positive_row(graph, node, None))
    return matrix


def _positive_row(graph: DataGraph, node: NodeId, color: Optional[str]) -> Dict[NodeId, int]:
    """Shortest positive distances from ``node``; the self entry (if any) is the
    shortest non-empty cycle back to ``node``."""
    distances = bfs_distances(graph, node, color)
    distances.pop(node, None)
    cycle: Optional[int] = None
    for predecessor in graph.predecessors(node, color):
        if predecessor == node:
            cycle = 1
            break
        via = distances.get(predecessor)
        if via is not None and (cycle is None or via + 1 < cycle):
            cycle = via + 1
    if cycle is not None:
        distances[node] = cycle
    return distances
