"""Attributed, edge-typed directed graph substrate.

The paper's data model (Section 2) is a directed graph ``G = (V, E, f_A, f_C)``
where ``f_A`` assigns an attribute tuple to every node and ``f_C`` assigns an
edge colour (type) from a finite alphabet to every edge.  This subpackage
implements that model plus the supporting machinery the evaluation algorithms
need:

* :class:`~repro.graph.data_graph.DataGraph` — adjacency-list storage with a
  per-colour edge index and reverse adjacency;
* :mod:`~repro.graph.csr` — the compiled CSR snapshot
  (:class:`~repro.graph.csr.CompiledGraph`) the flat-array query engine runs
  on;
* :mod:`~repro.graph.traversal` — BFS, bidirectional BFS, Tarjan SCC and
  topological sort (implemented directly, no external graph library on the
  evaluation path);
* :mod:`~repro.graph.distance` — the colour-aware shortest-distance matrix
  ``M[v1][v2][c]`` of Section 4;
* :mod:`~repro.graph.io` — JSON / edge-list round-trip;
* :mod:`~repro.graph.stats` — degree and colour statistics used by the
  experiment harness.
"""

from repro.graph.csr import CompiledGraph, compile_graph, compiled_snapshot
from repro.graph.data_graph import DataGraph, Edge
from repro.graph.distance import DistanceMatrix, build_distance_matrix
from repro.graph.traversal import (
    bfs_distances,
    bidirectional_distance,
    strongly_connected_components,
    topological_order,
)

__all__ = [
    "DataGraph",
    "Edge",
    "CompiledGraph",
    "compile_graph",
    "compiled_snapshot",
    "DistanceMatrix",
    "build_distance_matrix",
    "bfs_distances",
    "bidirectional_distance",
    "strongly_connected_components",
    "topological_order",
]
