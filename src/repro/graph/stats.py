"""Descriptive statistics of data graphs, used by the experiment harness."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.graph.data_graph import DataGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a data graph."""

    name: str
    num_nodes: int
    num_edges: int
    num_colors: int
    color_counts: Dict[str, int]
    max_out_degree: int
    max_in_degree: int
    average_out_degree: float

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary suitable for tabular reporting."""
        return {
            "graph": self.name,
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "colors": self.num_colors,
            "max_out": self.max_out_degree,
            "max_in": self.max_in_degree,
            "avg_out": round(self.average_out_degree, 3),
        }


def compute_stats(graph: DataGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    color_counts: Counter = Counter()
    for edge in graph.edges():
        color_counts[edge.color] += 1
    out_degrees = [graph.out_degree(node) for node in graph.nodes()]
    in_degrees = [graph.in_degree(node) for node in graph.nodes()]
    num_nodes = graph.num_nodes
    return GraphStats(
        name=graph.name,
        num_nodes=num_nodes,
        num_edges=graph.num_edges,
        num_colors=len(graph.colors),
        color_counts=dict(color_counts),
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max(in_degrees, default=0),
        average_out_degree=(sum(out_degrees) / num_nodes) if num_nodes else 0.0,
    )
