"""Graph traversal primitives used by the query-evaluation algorithms.

Everything here works directly on :class:`~repro.graph.data_graph.DataGraph`;
the evaluation path deliberately avoids external graph libraries so the
complexity of each algorithm is exactly what the paper states.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.data_graph import DataGraph

NodeId = Hashable


def bfs_distances(
    graph: DataGraph,
    source: NodeId,
    color: Optional[str] = None,
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> Dict[NodeId, int]:
    """Single-source shortest distances via edges of one colour.

    Parameters
    ----------
    graph:
        The data graph.
    source:
        Start node.
    color:
        Restrict traversal to edges of this colour; ``None`` means any colour
        (the wildcard case).
    reverse:
        Traverse edges backwards (used by the bidirectional search).
    max_depth:
        Stop expanding beyond this distance.

    Returns
    -------
    dict
        ``{node: distance}`` for every reached node, including ``source`` at
        distance 0.
    """
    neighbours = graph.predecessors if reverse else graph.successors
    distances: Dict[NodeId, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for nxt in neighbours(current, color):
            if nxt not in distances:
                distances[nxt] = depth + 1
                queue.append(nxt)
    return distances


def bidirectional_distance(
    graph: DataGraph,
    source: NodeId,
    target: NodeId,
    color: Optional[str] = None,
    max_depth: Optional[int] = None,
) -> Optional[int]:
    """Shortest distance from ``source`` to ``target`` via edges of one colour.

    Implements the bidirectional BFS of Section 4: two frontiers are grown,
    always expanding the smaller one, until they meet or cannot be expanded.
    Returns ``None`` when ``target`` is unreachable (within ``max_depth``).

    Note that the paper's path semantics require a *non-empty* path, so a
    query for ``source == target`` only succeeds through a cycle; this helper
    returns 0 for that case and the callers handle the non-empty requirement.
    """
    if source == target:
        return 0
    if source not in graph or target not in graph:
        return None

    # Early exit used in the paper's example: if no incoming (resp. outgoing)
    # edge of the requested colour touches the endpoints, give up immediately.
    if color is not None:
        if color not in graph.successor_colors(source):
            return None
        if color not in graph.predecessor_colors(target):
            return None

    forward: Dict[NodeId, int] = {source: 0}
    backward: Dict[NodeId, int] = {target: 0}
    forward_frontier: Set[NodeId] = {source}
    backward_frontier: Set[NodeId] = {target}

    while forward_frontier and backward_frontier:
        # Expand the smaller frontier, as the paper prescribes.
        expand_forward = len(forward_frontier) <= len(backward_frontier)
        if expand_forward:
            frontier, seen, neighbours = forward_frontier, forward, graph.successors
        else:
            frontier, seen, neighbours = backward_frontier, backward, graph.predecessors

        next_frontier: Set[NodeId] = set()
        for node in frontier:
            depth = seen[node]
            if max_depth is not None and forward.get(node, 0) + backward.get(node, 0) > max_depth:
                continue
            for nxt in neighbours(node, color):
                if nxt not in seen:
                    seen[nxt] = depth + 1
                    next_frontier.add(nxt)
        if expand_forward:
            forward_frontier = next_frontier
        else:
            backward_frontier = next_frontier

        meeting = forward.keys() & backward.keys()
        if meeting:
            best = min(forward[node] + backward[node] for node in meeting)
            if max_depth is None or best <= max_depth:
                return best
            return None
        if max_depth is not None:
            current_min = (min(forward.values(), default=0)
                           + min(backward.values(), default=0))
            if current_min > max_depth:
                return None
    return None


def strongly_connected_components(
    nodes: Iterable[NodeId], successors
) -> List[List[NodeId]]:
    """Tarjan's algorithm (iterative) over an arbitrary successor function.

    Parameters
    ----------
    nodes:
        Iterable of all node ids.
    successors:
        Callable ``node -> iterable of successor nodes``.

    Returns
    -------
    list of lists
        The strongly connected components in *reverse topological order* of
        the condensation (i.e. a component appears before any component it can
        reach) — exactly the order JoinMatch processes them in.
    """
    index_counter = 0
    indices: Dict[NodeId, int] = {}
    lowlinks: Dict[NodeId, int] = {}
    on_stack: Set[NodeId] = set()
    stack: List[NodeId] = []
    components: List[List[NodeId]] = []

    for root in nodes:
        if root in indices:
            continue
        work: List[Tuple[NodeId, Iterator]] = [(root, iter(list(successors(root))))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for nxt in iterator:
                if nxt not in indices:
                    indices[nxt] = lowlinks[nxt] = index_counter
                    index_counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(list(successors(nxt)))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: List[NodeId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def topological_order(nodes: Sequence[NodeId], successors) -> List[NodeId]:
    """Topological order of a DAG given by a successor function.

    Raises
    ------
    ValueError
        If the graph contains a cycle.
    """
    node_list = list(nodes)
    node_set = set(node_list)
    in_degree: Dict[NodeId, int] = {node: 0 for node in node_list}
    for node in node_list:
        for nxt in successors(node):
            if nxt in node_set:
                in_degree[nxt] += 1
    queue = deque(node for node in node_list if in_degree[node] == 0)
    order: List[NodeId] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for nxt in successors(node):
            if nxt in node_set:
                in_degree[nxt] -= 1
                if in_degree[nxt] == 0:
                    queue.append(nxt)
    if len(order) != len(node_list):
        raise ValueError("graph contains a cycle; topological order undefined")
    return order
