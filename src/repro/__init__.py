"""repro — reproduction of *Adding Regular Expressions to Graph Reachability
and Pattern Queries* (Fan, Li, Ma, Tang, Wu; ICDE 2011 / FCS 2012).

The library provides:

* a data-graph substrate with attributed nodes and colour-typed edges
  (:class:`DataGraph`, :func:`build_distance_matrix`);
* the restricted regular-expression class ``F`` used for edge constraints
  (:class:`FRegex`, :func:`parse_fregex`);
* reachability queries (:class:`ReachabilityQuery`, :func:`evaluate_rq`) and
  graph pattern queries (:class:`PatternQuery`) with simulation-based
  semantics;
* static analyses — containment, equivalence, minimization and canonical
  forms (:func:`pq_contained_in`, :func:`pq_equivalent`,
  :func:`minimize_pattern_query`, :func:`canonicalize_query`);
* the two PQ evaluation algorithms of the paper (:func:`join_match`,
  :func:`split_match`) plus reference and baseline matchers;
* dataset generators, an experiment harness and benchmarks reproducing every
  figure of the paper's evaluation;
* a session facade (:class:`GraphSession`) with a cost-based planner,
  prepared queries, incremental watchers, pinned snapshots
  (:meth:`GraphSession.pin`) and a containment-powered semantic result
  cache (:class:`SemanticCache`);
* a snapshot-isolated serving layer (:class:`GraphService`,
  :class:`ServiceClient`, ``repro serve``) speaking a versioned JSON wire
  format (:data:`SCHEMA_VERSION`).
"""

from repro.exceptions import (
    EvaluationError,
    GraphError,
    OverloadedError,
    PredicateError,
    ProtocolError,
    QueryError,
    RegexSyntaxError,
    ReproError,
    ServiceError,
    SnapshotError,
)
from repro.graph.csr import CompiledGraph, compile_graph, compiled_snapshot
from repro.graph.data_graph import DataGraph, Edge
from repro.graph.distance import DistanceMatrix, build_distance_matrix
from repro.regex.fclass import FRegex, RegexAtom, WILDCARD
from repro.regex.parser import parse_fregex
from repro.regex.containment import language_contains, language_equal
from repro.query.predicates import AtomicCondition, Predicate
from repro.query.rq import ReachabilityQuery
from repro.query.pq import PatternEdge, PatternQuery
from repro.query.containment import (
    pq_containment_mapping,
    pq_contained_in,
    pq_equivalent,
    rq_contained_in,
    rq_equivalent,
)
from repro.query.minimization import minimize_pattern_query
from repro.query.canonical import (
    CanonicalQuery,
    canonical_pattern_query,
    canonical_regex,
    canonicalize_query,
)
from repro.query.generator import QueryGenerator
from repro.matching.reachability import ReachabilityResult, evaluate_rq
from repro.matching.result import PatternMatchResult
from repro.matching.join_match import join_match
from repro.matching.split_match import split_match
from repro.matching.naive import naive_match
from repro.matching.bounded_simulation import bounded_simulation_match
from repro.matching.subgraph_iso import subgraph_isomorphism_match
from repro.matching.paths import PathMatcher
from repro.matching.csr_engine import CsrEngine
from repro.matching.incremental import IncrementalPatternMatcher
from repro.matching.general_rq import (
    GeneralReachabilityQuery,
    evaluate_general_rq,
)
from repro.regex.general import GeneralRegex
from repro.metrics.fmeasure import compute_f_measure
from repro.storage.base import GraphStore
from repro.storage.dict_store import DictStore
from repro.storage.overlay import OverlayCsrStore
from repro.storage.snapshot import SnapshotGraph, StoreSnapshot
from repro.session.planner import QueryPlan, plan_query
from repro.session.result import SCHEMA_VERSION, QueryResult
from repro.session.semantic_cache import SemanticCache
from repro.session.session import (
    GraphSession,
    PreparedQuery,
    SessionSnapshot,
    SessionWatch,
    default_session,
)
from repro.service import (
    GraphService,
    ServiceClient,
    ServiceConfig,
)

__version__ = "2.9.0"

__all__ = [
    # exceptions
    "ReproError",
    "RegexSyntaxError",
    "PredicateError",
    "GraphError",
    "QueryError",
    "EvaluationError",
    "SnapshotError",
    "ServiceError",
    "ProtocolError",
    "OverloadedError",
    # graph substrate
    "DataGraph",
    "Edge",
    "CompiledGraph",
    "compile_graph",
    "compiled_snapshot",
    "DistanceMatrix",
    "build_distance_matrix",
    # regular expressions
    "FRegex",
    "RegexAtom",
    "WILDCARD",
    "parse_fregex",
    "language_contains",
    "language_equal",
    # queries
    "AtomicCondition",
    "Predicate",
    "ReachabilityQuery",
    "PatternQuery",
    "PatternEdge",
    "QueryGenerator",
    # static analyses
    "rq_contained_in",
    "rq_equivalent",
    "pq_containment_mapping",
    "pq_contained_in",
    "pq_equivalent",
    "minimize_pattern_query",
    "CanonicalQuery",
    "canonical_pattern_query",
    "canonical_regex",
    "canonicalize_query",
    # evaluation
    "evaluate_rq",
    "ReachabilityResult",
    "PatternMatchResult",
    "join_match",
    "split_match",
    "naive_match",
    "bounded_simulation_match",
    "subgraph_isomorphism_match",
    "PathMatcher",
    "CsrEngine",
    # storage layer
    "GraphStore",
    "DictStore",
    "OverlayCsrStore",
    "StoreSnapshot",
    "SnapshotGraph",
    # extensions (the paper's future-work items)
    "IncrementalPatternMatcher",
    "GeneralRegex",
    "GeneralReachabilityQuery",
    "evaluate_general_rq",
    # session facade
    "GraphSession",
    "PreparedQuery",
    "SessionSnapshot",
    "SessionWatch",
    "QueryResult",
    "QueryPlan",
    "plan_query",
    "SemanticCache",
    "default_session",
    # serving layer
    "SCHEMA_VERSION",
    "GraphService",
    "ServiceConfig",
    "ServiceClient",
    # metrics
    "compute_f_measure",
]
