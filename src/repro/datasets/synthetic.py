"""The paper's 4-parameter synthetic graph generator (Section 6).

The generator is controlled by the number of nodes ``|V|``, the number of
edges ``|E|``, the average number of attributes per node and the set of edge
colours an edge may carry — exactly the knobs used in Fig. 12.  Attribute
values are small integers so that predicates of configurable selectivity can
be generated against them.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.exceptions import GraphError
from repro.graph.data_graph import DataGraph

#: Default edge-colour alphabet (4 colours, as in the paper's synthetic runs).
DEFAULT_COLORS = ("c0", "c1", "c2", "c3")


def generate_synthetic_graph(
    num_nodes: int,
    num_edges: int,
    num_attributes: int = 3,
    colors: Sequence[str] = DEFAULT_COLORS,
    attribute_cardinality: int = 10,
    seed: int = 42,
    name: Optional[str] = None,
) -> DataGraph:
    """Generate a random attributed, edge-coloured directed graph.

    Parameters
    ----------
    num_nodes, num_edges:
        Requested size.  ``num_edges`` is an upper target; duplicate random
        picks may leave the result marginally below it on dense settings.
    num_attributes:
        Number of attributes per node (``a0``, ``a1``, …).
    colors:
        Edge-colour alphabet to sample from.
    attribute_cardinality:
        Attribute values are drawn uniformly from ``[0, attribute_cardinality)``.
    seed:
        Seed for deterministic generation.
    """
    if num_nodes < 0 or num_edges < 0:
        raise GraphError("graph sizes must be non-negative")
    if not colors:
        raise GraphError("at least one edge colour is required")
    rng = random.Random(seed)
    graph = DataGraph(name=name or f"synthetic-{num_nodes}-{num_edges}")

    attribute_names = [f"a{i}" for i in range(num_attributes)]
    for index in range(num_nodes):
        attributes = {
            attr: rng.randrange(attribute_cardinality) for attr in attribute_names
        }
        graph.add_node(f"n{index}", **attributes)

    if num_nodes < 2:
        return graph
    nodes = [f"n{index}" for index in range(num_nodes)]
    palette = list(colors)

    attempts = 0
    max_attempts = 30 * max(num_edges, 1) + 1000
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        if source == target:
            continue
        graph.add_edge(source, target, rng.choice(palette))
    return graph
