"""The paper's 4-parameter synthetic graph generator (Section 6).

The generator is controlled by the number of nodes ``|V|``, the number of
edges ``|E|``, the average number of attributes per node and the set of edge
colours an edge may carry — exactly the knobs used in Fig. 12.  Attribute
values are small integers so that predicates of configurable selectivity can
be generated against them.
"""

from __future__ import annotations

import random
import sys
from collections import deque
from typing import Iterator, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.data_graph import DataGraph

#: Default edge-colour alphabet (4 colours, as in the paper's synthetic runs).
DEFAULT_COLORS = ("c0", "c1", "c2", "c3")

#: Id-locality radius of :func:`scale_free_stream`: both endpoints of an edge
#: fall within this many ids of a cursor sweeping the id space, so range
#: partitions cut only ~``window / shard_size`` of the edges.
SCALE_FREE_WINDOW = 4096


def _intern_palette(colors: Sequence[str]) -> list:
    """One interned ``str`` object per colour, shared by every edge.

    Generators stamp the *same* colour onto millions of edges; interning
    once per run means the edge stream (and everything built from it)
    carries object references, never per-edge string copies.
    """
    if not colors:
        raise GraphError("at least one edge colour is required")
    return [sys.intern(str(color)) for color in colors]


def generate_synthetic_graph(
    num_nodes: int,
    num_edges: int,
    num_attributes: int = 3,
    colors: Sequence[str] = DEFAULT_COLORS,
    attribute_cardinality: int = 10,
    seed: int = 42,
    name: Optional[str] = None,
) -> DataGraph:
    """Generate a random attributed, edge-coloured directed graph.

    Parameters
    ----------
    num_nodes, num_edges:
        Requested size.  ``num_edges`` is an upper target; duplicate random
        picks may leave the result marginally below it on dense settings.
    num_attributes:
        Number of attributes per node (``a0``, ``a1``, …).
    colors:
        Edge-colour alphabet to sample from.
    attribute_cardinality:
        Attribute values are drawn uniformly from ``[0, attribute_cardinality)``.
    seed:
        Seed for deterministic generation.
    """
    if num_nodes < 0 or num_edges < 0:
        raise GraphError("graph sizes must be non-negative")
    palette = _intern_palette(colors)
    rng = random.Random(seed)
    graph = DataGraph(name=name or f"synthetic-{num_nodes}-{num_edges}")

    attribute_names = [f"a{i}" for i in range(num_attributes)]
    for index in range(num_nodes):
        attributes = {
            attr: rng.randrange(attribute_cardinality) for attr in attribute_names
        }
        graph.add_node(f"n{index}", **attributes)

    if num_nodes < 2:
        return graph
    nodes = [f"n{index}" for index in range(num_nodes)]

    attempts = 0
    max_attempts = 30 * max(num_edges, 1) + 1000
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        if source == target:
            continue
        graph.add_edge(source, target, rng.choice(palette))
    return graph


def scale_free_stream(
    num_nodes: int,
    num_edges: int,
    colors: Sequence[str] = DEFAULT_COLORS,
    seed: int = 42,
    window: int = SCALE_FREE_WINDOW,
) -> Iterator[Tuple[int, int, str]]:
    """Stream ``(source, target, color)`` triples of a scale-free-ish graph.

    Built for the 10^6–10^7 edge range the partitioned store targets: the
    generator yields one integer triple at a time and keeps only an
    O(``window``) recency deque, so a ten-million-edge run never
    materialises an edge list in Python objects — feed it straight into
    :meth:`repro.storage.partition.PartitionedStore.from_edges` or a
    chunked ingest.

    Edges follow a recency-window preferential attachment: a cursor sweeps
    the id space once over the run; each edge's source is drawn near the
    cursor, and its target is, with high probability, a *recently used*
    endpoint (repeat-choice makes early local picks accumulate degree — the
    scale-free flavour) or else a fresh id near the cursor.  Both endpoints
    therefore fall within ~``window`` ids of each other, which is what
    makes range partitions cheap to cut (only edges straddling a shard
    border become boundary edges).

    Node ids are plain ``int``s in ``[0, num_nodes)``; colours are interned
    once per run (every yielded triple shares the same colour objects).
    Deterministic for a given ``seed``.
    """
    if num_nodes < 2:
        raise GraphError("scale_free_stream needs at least two nodes")
    if num_edges < 0:
        raise GraphError("graph sizes must be non-negative")
    if window < 1:
        raise GraphError("window must be positive")
    palette = _intern_palette(colors)
    rng = random.Random(seed)
    recent: deque = deque(maxlen=window)
    produced = 0
    while produced < num_edges:
        # The cursor walks 0 → num_nodes over the whole run, so every id
        # region receives edges and the recency deque stays local to it.
        cursor = (produced * max(num_nodes - window, 1)) // num_edges
        source = min(cursor + rng.randrange(window), num_nodes - 1)
        if recent and rng.random() < 0.75:
            target = recent[rng.randrange(len(recent))]
        else:
            target = min(cursor + rng.randrange(window), num_nodes - 1)
        if target == source:
            continue
        recent.append(source)
        recent.append(target)
        produced += 1
        yield (source, target, palette[rng.randrange(len(palette))])
