"""Synthetic stand-in for the Global Terrorism Database collaboration network.

The paper derives a terrorist-organisation (TO) collaboration network from the
Global Terrorism Database: 818 organisations, 1,600 collaboration edges, with
edge colours ``ic`` (international collaboration) and ``dc`` (domestic
collaboration) and node attributes ``gn`` (group name), ``country``, ``tt``
(target type) and ``at`` (attack type).  The GTD itself cannot be bundled, so
this module generates a network with the same schema and size, seeded with the
organisation names that appear in the paper's example query and results
(Fig. 9a), and a community-structured topology (most collaborations are
domestic / within a region, a minority are international).
"""

from __future__ import annotations

import random

from repro.graph.data_graph import DataGraph

#: Edge colours: international / domestic collaboration.
TERRORISM_COLORS = ("ic", "dc")

#: Organisation names highlighted in the paper's Fig. 9(a).
NAMED_ORGANISATIONS = (
    "Hamas",
    "Tanzim",
    "MEND",
    "Carlos the Jackal",
    "SSP",
    "Lashkar-e-Jhangvi",
)

COUNTRIES = (
    "Iraq", "Pakistan", "Afghanistan", "India", "Colombia", "Philippines",
    "Nigeria", "Somalia", "Yemen", "Algeria", "Lebanon", "Israel", "Turkey",
    "Peru", "Spain", "United Kingdom",
)

TARGET_TYPES = (
    "Business",
    "Military",
    "Private Citizens & Property",
    "Government (General)",
    "Police",
    "Religious Figures/Institutions",
    "Transportation",
)

ATTACK_TYPES = (
    "Armed Assault",
    "Bombing",
    "Assassination",
    "Hostage Taking",
    "Facility/Infrastructure Attack",
)

#: Paper dataset size (used as the default).
DEFAULT_NUM_NODES = 818
DEFAULT_NUM_EDGES = 1600


def generate_terrorism_graph(
    num_nodes: int = DEFAULT_NUM_NODES,
    num_edges: int = DEFAULT_NUM_EDGES,
    seed: int = 13,
    name: str = "terrorism",
) -> DataGraph:
    """Generate the GTD-like collaboration network.

    Nodes are terrorist organisations; an edge ``u -dc-> v`` (same country) or
    ``u -ic-> v`` (different countries) records that ``u`` assisted or
    collaborated with ``v``.  Generation is deterministic for a given seed.
    """
    rng = random.Random(seed)
    graph = DataGraph(name=name)

    node_country = {}
    for index in range(num_nodes):
        node = f"TO{index}"
        if index < len(NAMED_ORGANISATIONS):
            group_name = NAMED_ORGANISATIONS[index]
        else:
            group_name = f"Group-{index}"
        country = rng.choice(COUNTRIES)
        node_country[node] = country
        graph.add_node(
            node,
            gn=group_name,
            country=country,
            tt=rng.choice(TARGET_TYPES),
            at=rng.choice(ATTACK_TYPES),
        )

    nodes = list(node_country)
    if num_nodes < 2:
        return graph

    # Community structure: organisations mostly collaborate within their own
    # country (dc), occasionally across countries (ic).
    by_country = {}
    for node, country in node_country.items():
        by_country.setdefault(country, []).append(node)

    # The named organisations are collaboration hubs (as in the real GTD
    # network, where a handful of groups concentrate most joint attacks).
    hub_count = min(len(NAMED_ORGANISATIONS), num_nodes)
    hub_degree = max(4, num_edges // max(1, 20 * hub_count))
    for hub_index in range(hub_count):
        hub = nodes[hub_index]
        for _ in range(hub_degree):
            if graph.num_edges >= num_edges:
                break
            other = rng.choice(nodes)
            if other == hub:
                continue
            color = "dc" if node_country[hub] == node_country[other] else "ic"
            if rng.random() < 0.5:
                graph.add_edge(other, hub, color)
            else:
                graph.add_edge(hub, other, color)

    attempts = 0
    max_attempts = 40 * num_edges + 1000
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.choice(nodes)
        if rng.random() < 0.7:
            pool = by_country[node_country[source]]
            target = rng.choice(pool)
        else:
            target = rng.choice(nodes)
        if source == target:
            continue
        color = "dc" if node_country[source] == node_country[target] else "ic"
        graph.add_edge(source, target, color)
    return graph
