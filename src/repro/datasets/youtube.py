"""Synthetic stand-in for the crawled YouTube video graph of Section 6.

The paper's YouTube dataset (8,350 videos, 30,391 edges) is not
redistributable, so this module generates a graph with the same schema and
comparable structure:

* node attributes: uploader id ``uid``, category ``cat``, length ``len``
  (minutes), comment count ``com``, ``age`` (days since upload) and ``view``
  count — the attributes referenced by the paper's example query (Fig. 9a);
* edge colours: ``fc`` / ``fr`` (friends recommendation / reference) and
  ``sc`` / ``sr`` (strangers recommendation / reference);
* topology: a preferential-attachment backbone (skewed in-degree, like real
  recommendation graphs) plus uniformly random extra edges up to the requested
  edge count.

Generation is deterministic for a given seed.
"""

from __future__ import annotations

import random

from repro.graph.data_graph import DataGraph

#: Edge colours of the YouTube-like graph.
YOUTUBE_COLORS = ("fc", "fr", "sc", "sr")

#: Video categories sampled for the ``cat`` attribute (the two used by the
#: paper's example query are included).
CATEGORIES = (
    "Film & Animation",
    "Music",
    "Comedy",
    "Entertainment",
    "Sports",
    "News & Politics",
    "Howto & Style",
    "Science & Technology",
)

#: Uploader ids; ``Davedays`` appears in the paper's example query Q1 (Fig. 9a).
UPLOADERS = (
    "Davedays",
    "smosh",
    "kevjumba",
    "niga_higa",
    "universalmusicgroup",
    "machinima",
    "fred",
    "collegehumor",
    "mysteryguitarman",
    "huskystarcraft",
)

#: Paper dataset size (used as the default).
DEFAULT_NUM_NODES = 8350
DEFAULT_NUM_EDGES = 30391


def generate_youtube_graph(
    num_nodes: int = DEFAULT_NUM_NODES,
    num_edges: int = DEFAULT_NUM_EDGES,
    seed: int = 7,
    name: str = "youtube",
) -> DataGraph:
    """Generate the YouTube-like video graph.

    Parameters
    ----------
    num_nodes, num_edges:
        Graph size; defaults match the paper's dataset.  The experiment
        harness uses scaled-down sizes so the pure-Python algorithms finish in
        benchmark-friendly time (see EXPERIMENTS.md).
    seed:
        Seed for deterministic generation.
    name:
        Name recorded on the returned :class:`~repro.graph.data_graph.DataGraph`.
    """
    rng = random.Random(seed)
    graph = DataGraph(name=name)

    for index in range(num_nodes):
        node = f"video{index}"
        graph.add_node(
            node,
            uid=rng.choice(UPLOADERS),
            cat=rng.choice(CATEGORIES),
            len=rng.randint(1, 15),
            com=rng.randint(0, 2000),
            age=rng.randint(1, 2000),
            view=rng.randint(100, 1_000_000),
        )

    nodes = [f"video{index}" for index in range(num_nodes)]
    if num_nodes < 2:
        return graph

    # Preferential-attachment backbone: each node links to a few earlier
    # nodes, biased towards nodes that already attracted links.
    attractors = [nodes[0]]
    edges_added = 0
    for index in range(1, num_nodes):
        source = nodes[index]
        fanout = 1 + (index % 3)
        for _ in range(fanout):
            if edges_added >= num_edges:
                break
            target = rng.choice(attractors)
            if target == source:
                continue
            color = rng.choice(YOUTUBE_COLORS)
            graph.add_edge(source, target, color)
            attractors.append(target)
            edges_added += 1
        attractors.append(source)

    # Uniformly random extra edges (both directions appear in the real graph:
    # references point backwards in time, recommendations forwards).
    attempts = 0
    max_attempts = 20 * num_edges + 1000
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        if source == target:
            continue
        graph.add_edge(source, target, rng.choice(YOUTUBE_COLORS))
    return graph
