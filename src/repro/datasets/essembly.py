"""The paper's running example: the Essembly "cloning debate" network (Fig. 1).

The figure itself is not machine-readable, so the graph below is reconstructed
from the normative worked examples:

* Example 2.1 fixes the node attributes (doctors ``B1, B2``, biologists
  ``C1–C3``, the query issuer ``D1`` and a physician ``H1``);
* Example 2.2 fixes ``Q1(G) = {(C1,B1), (C1,B2), (C2,B1), (C2,B2)}`` for the
  reachability query ``Q1`` with constraint ``fa^2 fn``;
* Example 2.3 fixes the full answer table of the pattern query ``Q2``,
  including the witness paths ``C3 -fa-> C1 -sa-> D1`` and
  ``C1 -fa-> C2 -fa-> C1 -sa-> D1``.

The edges chosen here reproduce those answers exactly (asserted by the test
suite), which is what matters for using the example as a correctness oracle.
"""

from __future__ import annotations

from repro.graph.data_graph import DataGraph
from repro.query.pq import PatternQuery
from repro.query.rq import ReachabilityQuery

#: Edge colours of the Essembly network: friends/strangers × allies/nemeses.
ESSEMBLY_COLORS = ("fa", "fn", "sa", "sn")


def build_essembly_graph() -> DataGraph:
    """Build the Fig. 1 data graph ``G`` of the cloning-research debate."""
    graph = DataGraph(name="essembly")

    graph.add_node("B1", job="doctor", dsp="cloning")
    graph.add_node("B2", job="doctor", dsp="cloning")
    graph.add_node("C1", job="biologist", sp="cloning")
    graph.add_node("C2", job="biologist", sp="cloning")
    graph.add_node("C3", job="biologist", sp="cloning")
    graph.add_node("D1", uid="Alice001", sp="cloning")
    graph.add_node("H1", job="physician")

    graph.add_edges_from(
        [
            # friends-allies cycle among the biologists
            ("C1", "C2", "fa"),
            ("C2", "C1", "fa"),
            ("C2", "C3", "fa"),
            ("C3", "C1", "fa"),
            # the biologist C3 is a friends-nemesis of both doctors
            ("C3", "B1", "fn"),
            ("C3", "B2", "fn"),
            # the doctors are friends-nemeses of Alice (D1)
            ("B1", "D1", "fn"),
            ("B2", "D1", "fn"),
            # Alice is a strangers-ally of C1 (reached from C3 via fa then sa)
            ("C1", "D1", "sa"),
            # the doctors are strangers-nemeses of the biologist C3
            ("B1", "C3", "sn"),
            ("B2", "C3", "sn"),
            # the physician is loosely attached to the debate
            ("D1", "H1", "sa"),
            ("H1", "B1", "sn"),
        ]
    )
    return graph


def essembly_query_q1() -> ReachabilityQuery:
    """The reachability query ``Q1`` of Fig. 1.

    Find biologists supporting cloning that reach a doctor through at most two
    friends-allies hops followed by one friends-nemeses edge (``fa^2 fn``).
    """
    return ReachabilityQuery(
        source_predicate={"job": "biologist", "sp": "cloning"},
        target_predicate={"job": "doctor"},
        regex="fa^2.fn",
        source="C",
        target="B",
    )


def essembly_query_q2() -> PatternQuery:
    """The pattern query ``Q2`` of Fig. 1 (issued by Alice, uid ``Alice001``)."""
    pattern = PatternQuery(name="essembly-q2")
    pattern.add_node("B", {"job": "doctor", "dsp": "cloning"})
    pattern.add_node("C", {"job": "biologist", "sp": "cloning"})
    pattern.add_node("D", {"uid": "Alice001"})

    pattern.add_edge("B", "D", "fn")            # doctors are friends-nemeses of Alice
    pattern.add_edge("C", "D", "fa^2.sa^2")     # biologists reach Alice via fa≤2 then sa≤2
    pattern.add_edge("C", "B", "fn")            # biologists against the doctors
    pattern.add_edge("B", "C", "sn")            # and vice versa
    pattern.add_edge("C", "C", "fa^+")          # a friends-allies scientist group
    return pattern


#: The answer of Q1 on the Essembly graph, as printed in Fig. 2 / Example 2.2.
EXPECTED_Q1_RESULT = frozenset(
    {("C1", "B1"), ("C1", "B2"), ("C2", "B1"), ("C2", "B2")}
)

#: The answer of Q2 on the Essembly graph, as printed in Example 2.3.
EXPECTED_Q2_RESULT = {
    ("B", "C"): frozenset({("B1", "C3"), ("B2", "C3")}),
    ("C", "C"): frozenset({("C3", "C3")}),
    ("B", "D"): frozenset({("B1", "D1"), ("B2", "D1")}),
    ("C", "D"): frozenset({("C3", "D1")}),
    ("C", "B"): frozenset({("C3", "B1"), ("C3", "B2")}),
}
