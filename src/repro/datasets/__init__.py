"""Dataset builders.

* :mod:`~repro.datasets.essembly` — the paper's running example (Fig. 1):
  the Essembly "cloning debate" graph together with queries ``Q1`` and ``Q2``;
* :mod:`~repro.datasets.youtube` — a synthetic stand-in for the crawled
  YouTube video graph used in the experiments (same schema, colours and
  default size);
* :mod:`~repro.datasets.terrorism` — a synthetic stand-in for the Global
  Terrorism Database collaboration network;
* :mod:`~repro.datasets.synthetic` — the paper's 4-parameter synthetic graph
  generator, plus :func:`~repro.datasets.synthetic.scale_free_stream` for
  streaming 10^6–10^7-edge graphs into the partitioned store;
* :mod:`~repro.datasets.ingest` — chunked streaming ingest of edge-list /
  CSV files into a :class:`~repro.storage.partition.PartitionedStore`.

The two real-life datasets of the paper are not redistributable offline, so
the stand-ins reproduce their schema, edge-colour alphabet, size and skewed
degree distribution (see DESIGN.md, "Substitution note").
"""

from repro.datasets.essembly import build_essembly_graph, essembly_query_q1, essembly_query_q2
from repro.datasets.youtube import generate_youtube_graph
from repro.datasets.terrorism import generate_terrorism_graph
from repro.datasets.synthetic import generate_synthetic_graph, scale_free_stream

__all__ = [
    "build_essembly_graph",
    "essembly_query_q1",
    "essembly_query_q2",
    "generate_youtube_graph",
    "generate_terrorism_graph",
    "generate_synthetic_graph",
    "scale_free_stream",
]
