"""Chunked streaming ingest of edge files into the partitioned store.

:func:`ingest_edge_list` glues two streaming halves together:
:func:`repro.graph.io.iter_edge_chunks` reads an edge-list / CSV file one
bounded chunk of interned triples at a time, and
:meth:`repro.storage.partition.PartitionedStore.from_edges` interns the
stream into compact integer buffers as it arrives — the full edge list is
never materialised as Python objects.  The returned :class:`IngestStats`
is what the ``repro ingest`` CLI subcommand reports (``--json`` emits its
:meth:`~IngestStats.to_dict` envelope).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.graph.io import EdgeTriple, PathLike, iter_edge_chunks
from repro.session.defaults import (
    DEFAULT_PARTITION_PARALLELISM,
    DEFAULT_PARTITION_SHARDS,
    INGEST_CHUNK_EDGES,
)
from repro.storage.partition import PartitionedStore, PartitionSpec

__all__ = ["IngestStats", "ingest_edge_list"]


@dataclass
class IngestStats:
    """What one streaming ingest run did, in numbers."""

    path: str
    nodes: int
    edges: int
    shards: int
    parallelism: int
    chunks: int
    peak_chunk: int
    boundary_nodes: int
    boundary_fraction: float

    def to_dict(self) -> Dict[str, object]:
        """A JSON-able view (the ``repro ingest --json`` payload)."""
        return {
            "path": self.path,
            "nodes": self.nodes,
            "edges": self.edges,
            "shards": self.shards,
            "parallelism": self.parallelism,
            "chunks": self.chunks,
            "peak_chunk": self.peak_chunk,
            "boundary_nodes": self.boundary_nodes,
            "boundary_fraction": self.boundary_fraction,
        }


def ingest_edge_list(
    path: PathLike,
    *,
    shards: int = DEFAULT_PARTITION_SHARDS,
    parallelism: int = DEFAULT_PARTITION_PARALLELISM,
    partition: PartitionSpec = None,
    chunk_edges: int = INGEST_CHUNK_EDGES,
    name: Optional[str] = None,
) -> Tuple[PartitionedStore, IngestStats]:
    """Stream an edge-list (or ``.csv``) file into a partitioned store.

    Reads ``path`` in chunks of at most ``chunk_edges`` triples and feeds
    them straight into :meth:`PartitionedStore.from_edges`; peak Python-object
    memory is one chunk plus the store's compact integer buffers.  Returns
    the built store and the run's :class:`IngestStats`.
    """
    path = Path(path)
    counters = {"chunks": 0, "peak_chunk": 0}

    def triples() -> Iterator[EdgeTriple]:
        for chunk in iter_edge_chunks(path, chunk_edges):
            counters["chunks"] += 1
            if len(chunk) > counters["peak_chunk"]:
                counters["peak_chunk"] = len(chunk)
            yield from chunk

    store = PartitionedStore.from_edges(
        triples(),
        shards=shards,
        parallelism=parallelism,
        partition=partition,
        name=name if name is not None else path.stem,
    )
    layout = store.overlay_stats()
    stats = IngestStats(
        path=str(path),
        nodes=store.num_nodes,
        edges=store.num_edges,
        shards=store.shard_count,
        parallelism=store.parallelism,
        chunks=counters["chunks"],
        peak_chunk=counters["peak_chunk"],
        boundary_nodes=layout["boundary_nodes"],
        boundary_fraction=layout["boundary_fraction"],
    )
    return store, stats
