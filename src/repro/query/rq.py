"""Reachability queries (RQs).

An RQ ``Qr = (u1, u2, f_u1, f_u2, f_e)`` asks for all node pairs ``(v1, v2)``
of a data graph such that ``v1`` satisfies ``f_u1``, ``v2`` satisfies
``f_u2``, and there is a *non-empty* path from ``v1`` to ``v2`` whose edge
colour string belongs to ``L(f_e)`` (Section 2).

Evaluation lives in :mod:`repro.matching.reachability`; this module only
defines the query object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.exceptions import QueryError
from repro.query.predicates import Predicate
from repro.regex.fclass import FRegex
from repro.regex.parser import parse_fregex

PredicateLike = Union[Predicate, str, dict, None]
RegexLike = Union[FRegex, str]


def coerce_predicate(value: PredicateLike) -> Predicate:
    """Accept a :class:`Predicate`, a parseable string, an equality dict or None."""
    if value is None:
        return Predicate.true()
    if isinstance(value, Predicate):
        return value
    if isinstance(value, str):
        return Predicate.parse(value)
    if isinstance(value, dict):
        return Predicate.from_dict(value)
    raise QueryError(f"cannot interpret {value!r} as a node predicate")


def coerce_regex(value: RegexLike) -> FRegex:
    """Accept an :class:`FRegex` or a parseable string."""
    if isinstance(value, FRegex):
        return value
    if isinstance(value, str):
        return parse_fregex(value)
    raise QueryError(f"cannot interpret {value!r} as an F-class regular expression")


@dataclass(frozen=True)
class ReachabilityQuery:
    """A reachability query ``(source, target, f_source, f_target, regex)``.

    Parameters
    ----------
    source_predicate, target_predicate:
        Search conditions on the two endpoints (:class:`Predicate`, textual
        form, equality dict, or ``None`` for the always-true predicate).
    regex:
        The F-class edge constraint (:class:`FRegex` or textual form).
    source, target:
        Optional names for the two query nodes (defaults ``"u1"``/``"u2"``);
        only used for display and when an RQ is embedded into a pattern query.
    """

    source_predicate: Predicate
    target_predicate: Predicate
    regex: FRegex
    source: str = "u1"
    target: str = "u2"

    def __init__(
        self,
        source_predicate: PredicateLike = None,
        target_predicate: PredicateLike = None,
        regex: RegexLike = "_",
        source: str = "u1",
        target: str = "u2",
    ):
        object.__setattr__(self, "source_predicate", coerce_predicate(source_predicate))
        object.__setattr__(self, "target_predicate", coerce_predicate(target_predicate))
        object.__setattr__(self, "regex", coerce_regex(regex))
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)

    @property
    def size(self) -> int:
        """Query size: predicate atoms plus regex atoms (used in complexity bounds)."""
        return (
            self.source_predicate.size
            + self.target_predicate.size
            + self.regex.num_atoms
        )

    @property
    def colors(self) -> frozenset:
        """Concrete colours mentioned by the edge constraint."""
        return self.regex.colors

    def is_single_color(self) -> bool:
        """True when the edge constraint consists of a single atom."""
        return self.regex.num_atoms == 1

    def decompose(self) -> Tuple["ReachabilityQuery", ...]:
        """Split a multi-atom RQ into a chain of single-atom RQs.

        Following Section 4, the query with regex ``a1 a2 … ah`` becomes ``h``
        queries chained through dummy (always-true) nodes ``d1 … d(h-1)``.
        """
        parts = self.regex.decompose()
        if len(parts) == 1:
            return (self,)
        queries = []
        previous_name = self.source
        previous_pred = self.source_predicate
        for index, part in enumerate(parts):
            last = index == len(parts) - 1
            next_name = self.target if last else f"{self.source}~dummy{index}"
            next_pred = self.target_predicate if last else Predicate.true()
            queries.append(
                ReachabilityQuery(
                    source_predicate=previous_pred,
                    target_predicate=next_pred,
                    regex=part,
                    source=previous_name,
                    target=next_name,
                )
            )
            previous_name = next_name
            previous_pred = next_pred
        return tuple(queries)

    def __str__(self) -> str:
        return (
            f"RQ({self.source}[{self.source_predicate}] "
            f"-[{self.regex}]-> {self.target}[{self.target_predicate}])"
        )
