"""Query model: node predicates, reachability queries and pattern queries.

* :mod:`~repro.query.predicates` — conjunctive node predicates ``A op a`` and
  the implication test ``u ⊢ w`` used by containment;
* :mod:`~repro.query.rq` — reachability queries (RQs);
* :mod:`~repro.query.pq` — graph pattern queries (PQs);
* :mod:`~repro.query.containment` — containment / equivalence (Section 3.1);
* :mod:`~repro.query.minimization` — the ``minPQs`` algorithm (Section 3.2);
* :mod:`~repro.query.canonical` — canonical query forms and semantic cache
  keys built on minimization and regex normalization;
* :mod:`~repro.query.generator` — the paper's parameterised query generator.
"""

from repro.query.predicates import AtomicCondition, Predicate
from repro.query.rq import ReachabilityQuery
from repro.query.pq import PatternEdge, PatternQuery
from repro.query.containment import (
    pq_containment_mapping,
    pq_contained_in,
    pq_equivalent,
    rq_contained_in,
    rq_equivalent,
)
from repro.query.minimization import minimize_pattern_query
from repro.query.canonical import (
    CanonicalQuery,
    canonical_pattern_query,
    canonical_regex,
    canonicalize_query,
)
from repro.query.generator import QueryGenerator

__all__ = [
    "AtomicCondition",
    "Predicate",
    "ReachabilityQuery",
    "PatternEdge",
    "PatternQuery",
    "rq_contained_in",
    "rq_equivalent",
    "pq_containment_mapping",
    "pq_contained_in",
    "pq_equivalent",
    "minimize_pattern_query",
    "CanonicalQuery",
    "canonical_pattern_query",
    "canonical_regex",
    "canonicalize_query",
    "QueryGenerator",
]
