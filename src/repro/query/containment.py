"""Containment and equivalence of RQs and PQs (Section 3.1).

Definitions (paper notation):

* For two RQs ``Q1 ⊑ Q2`` iff ``u1 ⊢ w1``, ``u2 ⊢ w2`` and ``L(f_e1) ⊆ L(f_e2)``
  (Proposition 3.3) — quadratic time overall, linear for the regex part.
* For two PQs, ``Q1 ⊑ Q2`` iff there is a *revised similarity* relation from
  ``Q2`` to ``Q1`` that additionally covers every edge of ``Q1``
  (Lemma 3.1 / Theorem 3.2) — cubic time.

The revised similarity computed here (:func:`revised_similarity`) is also the
building block of the ``minPQs`` minimization algorithm.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.query.pq import PatternEdge, PatternQuery
from repro.query.rq import ReachabilityQuery
from repro.regex.containment import language_contains

NodePair = Tuple[str, str]


# ---------------------------------------------------------------------------
# Reachability queries
# ---------------------------------------------------------------------------

def rq_contained_in(first: ReachabilityQuery, second: ReachabilityQuery) -> bool:
    """Containment ``first ⊑ second`` for reachability queries.

    Requires the endpoint predicates of ``first`` to imply those of ``second``
    and the edge language of ``first`` to be contained in that of ``second``.
    """
    return (
        first.source_predicate.implies(second.source_predicate)
        and first.target_predicate.implies(second.target_predicate)
        and language_contains(first.regex, second.regex)
    )


def rq_equivalent(first: ReachabilityQuery, second: ReachabilityQuery) -> bool:
    """Equivalence of two reachability queries (mutual containment)."""
    return rq_contained_in(first, second) and rq_contained_in(second, first)


# ---------------------------------------------------------------------------
# Pattern queries
# ---------------------------------------------------------------------------

def revised_similarity(
    simulated: PatternQuery, simulating: PatternQuery
) -> Set[NodePair]:
    """Maximum relation ``Sr ⊆ V(simulated) × V(simulating)`` such that for
    every ``(u, w) ∈ Sr``:

    * ``w ⊢ u`` — the predicate of ``w`` (in ``simulating``) implies the
      predicate of ``u`` (in ``simulated``); and
    * for every edge ``(u, u2)`` of ``simulated`` there is an edge ``(w, w2)``
      of ``simulating`` with ``(u2, w2) ∈ Sr`` and
      ``L(f_(w,w2)) ⊆ L(f_(u,u2))``.

    This is condition (1) of the paper's revised similarity; condition (2)
    (edge coverage) is checked separately by :func:`pq_contained_in`.

    The computation is the classical simulation fixpoint and runs in cubic
    time in the sizes of the two queries.
    """
    # Pre-compute predicate implication and edge-language containment tables.
    implies: Dict[NodePair, bool] = {}
    for u in simulated.nodes():
        pred_u = simulated.predicate(u)
        for w in simulating.nodes():
            implies[(u, w)] = simulating.predicate(w).implies(pred_u)

    edge_contained: Dict[Tuple[NodePair, NodePair], bool] = {}

    def regex_ok(sim_edge, host_edge) -> bool:
        key = (sim_edge.pair, host_edge.pair)
        if key not in edge_contained:
            edge_contained[key] = language_contains(host_edge.regex, sim_edge.regex)
        return edge_contained[key]

    relation: Set[NodePair] = {
        (u, w)
        for u in simulated.nodes()
        for w in simulating.nodes()
        if implies[(u, w)]
    }

    changed = True
    while changed:
        changed = False
        for (u, w) in list(relation):
            for sim_edge in simulated.out_edges(u):
                satisfied = any(
                    (sim_edge.target, host_edge.target) in relation
                    and regex_ok(sim_edge, host_edge)
                    for host_edge in simulating.out_edges(w)
                )
                if not satisfied:
                    relation.discard((u, w))
                    changed = True
                    break
    return relation


def pq_containment_mapping(
    first: PatternQuery, second: PatternQuery
) -> Optional[Dict[NodePair, PatternEdge]]:
    """The edge-mapping witness of ``first ⊑ second`` (Theorem 3.2), or None.

    When ``first`` is contained in ``second``, returns one covering edge of
    ``second`` per edge of ``first`` — a map ``λ`` from
    ``(source, target)`` pairs of ``first`` to :class:`PatternEdge` objects
    of ``second`` such that ``(λ(e).source, e.source)`` and
    ``(λ(e).target, e.target)`` are in the revised similarity and
    ``L(f_e) ⊆ L(f_λ(e))``.  By Theorem 3.2 the answers then nest edge-wise
    on *every* data graph: ``M(first)(e) ⊆ M(second)(λ(e))`` — the witness
    the semantic result cache uses to restrict evaluation of ``first`` to a
    cached answer of ``second``.  Returns ``None`` when containment fails.
    """
    relation = revised_similarity(second, first)
    if not relation and second.num_nodes:
        return None

    mapping: Dict[NodePair, PatternEdge] = {}
    for first_edge in first.edges():
        covering = next(
            (
                second_edge
                for second_edge in second.edges()
                if (second_edge.source, first_edge.source) in relation
                and (second_edge.target, first_edge.target) in relation
                and language_contains(first_edge.regex, second_edge.regex)
            ),
            None,
        )
        if covering is None:
            return None
        mapping[first_edge.pair] = covering
    return mapping


def pq_contained_in(first: PatternQuery, second: PatternQuery) -> bool:
    """Containment ``first ⊑ second`` for pattern queries (Theorem 3.2).

    By Lemma 3.1 this holds exactly when ``first`` is similar to ``second``:
    there is a revised similarity from ``second`` to ``first`` (condition (1))
    whose pairs also cover every edge of ``first`` (condition (2)).
    """
    return pq_containment_mapping(first, second) is not None


def pq_equivalent(first: PatternQuery, second: PatternQuery) -> bool:
    """Equivalence of two pattern queries (mutual containment)."""
    return pq_contained_in(first, second) and pq_contained_in(second, first)


def simulation_equivalent_nodes(pattern: PatternQuery) -> Dict[str, Set[str]]:
    """Group the nodes of one pattern into simulation-equivalence classes.

    Two nodes ``u, w`` are simulation equivalent when ``(u, w)`` and ``(w, u)``
    both belong to the maximum revised similarity of the pattern with itself
    (Section 3.2).  Returns ``{representative: class members}`` where the
    representative is the smallest member (by node-id ordering).
    """
    relation = revised_similarity(pattern, pattern)
    classes: Dict[str, Set[str]] = {}
    assigned: Dict[str, str] = {}
    for node in sorted(pattern.nodes(), key=str):
        placed = False
        for representative in classes:
            if (node, representative) in relation and (representative, node) in relation:
                classes[representative].add(node)
                assigned[node] = representative
                placed = True
                break
        if not placed:
            classes[node] = {node}
            assigned[node] = node
    return classes
