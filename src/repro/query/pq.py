"""Graph pattern queries (PQs).

A PQ is a directed graph whose nodes carry predicates and whose edges carry
F-class regular expressions; every edge, together with its endpoints'
predicates, is a reachability query (Section 2).  Matching semantics (an
extension of graph simulation) is implemented in
:mod:`repro.matching.join_match` and :mod:`repro.matching.split_match`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import QueryError
from repro.query.predicates import Predicate
from repro.query.rq import PredicateLike, ReachabilityQuery, RegexLike, coerce_predicate, coerce_regex
from repro.regex.fclass import FRegex
from repro.graph.traversal import strongly_connected_components


@dataclass(frozen=True)
class PatternEdge:
    """A pattern edge ``source -[regex]-> target``."""

    source: str
    target: str
    regex: FRegex

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.source, self.target)

    def __str__(self) -> str:
        return f"{self.source} -[{self.regex}]-> {self.target}"


class PatternQuery:
    """A graph pattern query ``Qp = (Vp, Ep, f_v, f_e)``.

    Nodes are identified by strings; at most one edge may connect an ordered
    pair of nodes (the paper's final queries are simple graphs; the multigraph
    intermediate of ``minPQs`` is handled internally by the minimizer).
    """

    __slots__ = ("name", "_predicates", "_out", "_in")

    def __init__(self, name: str = "pattern"):
        self.name = name
        self._predicates: Dict[str, Predicate] = {}
        self._out: Dict[str, Dict[str, FRegex]] = {}
        self._in: Dict[str, Dict[str, FRegex]] = {}

    # -- construction ----------------------------------------------------------

    def add_node(self, node: str, predicate: PredicateLike = None) -> str:
        """Add a pattern node with a search condition (default: always true)."""
        if node in self._predicates and predicate is None:
            return node
        self._predicates[node] = coerce_predicate(predicate)
        self._out.setdefault(node, {})
        self._in.setdefault(node, {})
        return node

    def add_edge(self, source: str, target: str, regex: RegexLike = "_") -> PatternEdge:
        """Add a pattern edge; endpoints are created (with true predicates) if new."""
        if source not in self._predicates:
            self.add_node(source)
        if target not in self._predicates:
            self.add_node(target)
        compiled = coerce_regex(regex)
        if target in self._out[source]:
            raise QueryError(
                f"edge ({source!r}, {target!r}) already exists; pattern queries are simple graphs"
            )
        self._out[source][target] = compiled
        self._in[target][source] = compiled
        return PatternEdge(source, target, compiled)

    def remove_edge(self, source: str, target: str) -> None:
        """Remove a pattern edge."""
        try:
            del self._out[source][target]
            del self._in[target][source]
        except KeyError as exc:
            raise QueryError(f"edge ({source!r}, {target!r}) does not exist") from exc

    def remove_node(self, node: str) -> None:
        """Remove a node and all incident edges."""
        if node not in self._predicates:
            raise QueryError(f"node {node!r} does not exist")
        for target in list(self._out[node]):
            self.remove_edge(node, target)
        for source in list(self._in[node]):
            self.remove_edge(source, node)
        del self._predicates[node]
        del self._out[node]
        del self._in[node]

    # -- accessors -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._predicates)

    @property
    def num_edges(self) -> int:
        return sum(len(targets) for targets in self._out.values())

    @property
    def size(self) -> int:
        """The paper's query size ``|Q| = |Vp| + |Ep|``."""
        return self.num_nodes + self.num_edges

    def nodes(self) -> Iterator[str]:
        return iter(self._predicates)

    def has_node(self, node: str) -> bool:
        return node in self._predicates

    def has_edge(self, source: str, target: str) -> bool:
        return target in self._out.get(source, {})

    def predicate(self, node: str) -> Predicate:
        try:
            return self._predicates[node]
        except KeyError as exc:
            raise QueryError(f"node {node!r} does not exist") from exc

    def set_predicate(self, node: str, predicate: PredicateLike) -> None:
        if node not in self._predicates:
            raise QueryError(f"node {node!r} does not exist")
        self._predicates[node] = coerce_predicate(predicate)

    def regex(self, source: str, target: str) -> FRegex:
        try:
            return self._out[source][target]
        except KeyError as exc:
            raise QueryError(f"edge ({source!r}, {target!r}) does not exist") from exc

    def edges(self) -> Iterator[PatternEdge]:
        for source, targets in self._out.items():
            for target, regex in targets.items():
                yield PatternEdge(source, target, regex)

    def out_edges(self, node: str) -> Iterator[PatternEdge]:
        for target, regex in self._out.get(node, {}).items():
            yield PatternEdge(node, target, regex)

    def in_edges(self, node: str) -> Iterator[PatternEdge]:
        for source, regex in self._in.get(node, {}).items():
            yield PatternEdge(source, node, regex)

    def successors(self, node: str) -> Set[str]:
        return set(self._out.get(node, {}))

    def predecessors(self, node: str) -> Set[str]:
        return set(self._in.get(node, {}))

    def rq_for_edge(self, source: str, target: str) -> ReachabilityQuery:
        """The reachability query embedded in one pattern edge."""
        return ReachabilityQuery(
            source_predicate=self.predicate(source),
            target_predicate=self.predicate(target),
            regex=self.regex(source, target),
            source=source,
            target=target,
        )

    @property
    def colors(self) -> frozenset:
        """All concrete colours mentioned by edge constraints."""
        result: Set[str] = set()
        for edge in self.edges():
            result |= set(edge.regex.colors)
        return frozenset(result)

    # -- structure -------------------------------------------------------------

    def strongly_connected_components(self) -> List[List[str]]:
        """SCCs of the pattern graph in reverse topological order."""
        return strongly_connected_components(list(self.nodes()), self.successors)

    def is_dag(self) -> bool:
        """True when the pattern graph contains no directed cycle."""
        return all(len(component) == 1 for component in self.strongly_connected_components()) and not any(
            self.has_edge(node, node) for node in self.nodes()
        )

    def is_connected(self) -> bool:
        """True when the underlying undirected graph is connected (or empty)."""
        nodes = list(self.nodes())
        if not nodes:
            return True
        seen = {nodes[0]}
        stack = [nodes[0]]
        while stack:
            current = stack.pop()
            for neighbour in self.successors(current) | self.predecessors(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(nodes)

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_rq(cls, query: ReachabilityQuery, name: str = "pattern") -> "PatternQuery":
        """Wrap a reachability query as a two-node pattern query."""
        pattern = cls(name=name)
        pattern.add_node(query.source, query.source_predicate)
        pattern.add_node(query.target, query.target_predicate)
        pattern.add_edge(query.source, query.target, query.regex)
        return pattern

    def normalized(self) -> "PatternQuery":
        """Decompose every multi-atom edge constraint via dummy nodes.

        This is the ``Normalize`` step of JoinMatch / SplitMatch (Section 5):
        each edge labelled ``a1 a2 … ah`` is replaced by a path of ``h`` edges
        through fresh always-true nodes, so that every edge carries a single
        atom and the distance matrix can be consulted directly.
        """
        result = PatternQuery(name=f"{self.name}-normalized")
        for node in self.nodes():
            result.add_node(node, self.predicate(node))
        counter = 0
        for edge in self.edges():
            parts = edge.regex.decompose()
            if len(parts) == 1:
                result.add_edge(edge.source, edge.target, edge.regex)
                continue
            previous = edge.source
            for index, part in enumerate(parts):
                last = index == len(parts) - 1
                if last:
                    nxt = edge.target
                else:
                    nxt = f"__dummy_{counter}"
                    counter += 1
                    result.add_node(nxt, Predicate.true())
                result.add_edge(previous, nxt, part)
                previous = nxt
        return result

    def copy(self, name: Optional[str] = None) -> "PatternQuery":
        """An independent copy of this pattern query."""
        result = PatternQuery(name=name or self.name)
        for node in self.nodes():
            result.add_node(node, self.predicate(node))
        for edge in self.edges():
            result.add_edge(edge.source, edge.target, edge.regex)
        return result

    # -- dunder protocol -------------------------------------------------------

    def __contains__(self, node: str) -> bool:
        return node in self._predicates

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"PatternQuery(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def describe(self) -> str:
        """A multi-line human-readable description of the pattern."""
        lines = [f"PatternQuery {self.name!r}:"]
        for node in self.nodes():
            lines.append(f"  node {node}: {self.predicate(node)}")
        for edge in self.edges():
            lines.append(f"  edge {edge}")
        return "\n".join(lines)
