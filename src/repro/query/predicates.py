"""Node predicates: conjunctions of atomic comparisons ``A op a``.

A query node carries a predicate ``f_u`` that is a conjunction of atomic
formulas ``A op a`` with ``op ∈ {<, <=, =, !=, >, >=}`` (Section 2).  This
module provides

* :class:`AtomicCondition` — one comparison;
* :class:`Predicate` — a conjunction, with satisfaction (``v ≍ u``),
  satisfiability and the implication test ``u ⊢ w`` of Proposition 3.3;
* a small textual syntax, e.g. ``Predicate.parse("job = 'doctor' & age > 30")``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import PredicateError

#: Comparison operators supported by atomic conditions.
OPERATORS = ("<=", ">=", "!=", "=", "<", ">")

_NUMERIC_TYPES = (int, float)


def _comparable(left: Any, right: Any) -> bool:
    """True when the two attribute values can be ordered against each other."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, _NUMERIC_TYPES) and isinstance(right, _NUMERIC_TYPES):
        return True
    return type(left) is type(right)


def _compare(left: Any, op: str, right: Any) -> bool:
    """Evaluate ``left op right``; incomparable values fail ordering tests."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if not _comparable(left, right):
        return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise PredicateError(f"unknown operator {op!r}")


@dataclass(frozen=True)
class AtomicCondition:
    """A single comparison ``attribute op value``."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise PredicateError(
                f"operator must be one of {OPERATORS}, got {self.op!r}"
            )
        if not self.attribute:
            raise PredicateError("attribute name must be non-empty")

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        """True when the attribute tuple satisfies this condition.

        A node that lacks the attribute does not satisfy any condition on it
        (matching the paper: the node must *have* an attribute A with
        ``v.A op a``).
        """
        if self.attribute not in attributes:
            return False
        return _compare(attributes[self.attribute], self.op, self.value)

    def __str__(self) -> str:
        value = f"'{self.value}'" if isinstance(self.value, str) else self.value
        return f"{self.attribute} {self.op} {value}"


class _Interval:
    """Interval + excluded points implied by a conjunction on one attribute."""

    __slots__ = ("lower", "lower_strict", "upper", "upper_strict", "equal", "not_equal", "contradictory")

    def __init__(self) -> None:
        self.lower: Any = None
        self.lower_strict = False
        self.upper: Any = None
        self.upper_strict = False
        self.equal: Any = _MISSING
        self.not_equal: set = set()
        self.contradictory = False

    def add(self, condition: AtomicCondition) -> None:
        value = condition.value
        op = condition.op
        if op == "=":
            if self.equal is not _MISSING and self.equal != value:
                self.contradictory = True
            self.equal = value
        elif op == "!=":
            self.not_equal.add(value)
        elif op in ("<", "<="):
            strict = op == "<"
            if self.upper is None or self._tighter_upper(value, strict):
                self.upper, self.upper_strict = value, strict
        elif op in (">", ">="):
            strict = op == ">"
            if self.lower is None or self._tighter_lower(value, strict):
                self.lower, self.lower_strict = value, strict

    def _tighter_upper(self, value: Any, strict: bool) -> bool:
        if not _comparable(value, self.upper):
            return False
        if value < self.upper:
            return True
        return value == self.upper and strict and not self.upper_strict

    def _tighter_lower(self, value: Any, strict: bool) -> bool:
        if not _comparable(value, self.lower):
            return False
        if value > self.lower:
            return True
        return value == self.lower and strict and not self.lower_strict

    # -- satisfiability --------------------------------------------------------

    def satisfiable(self) -> bool:
        if self.contradictory:
            return False
        if self.equal is not _MISSING:
            candidate = self.equal
            if candidate in self.not_equal:
                return False
            if self.lower is not None and not _compare(candidate, ">" if self.lower_strict else ">=", self.lower):
                return False
            if self.upper is not None and not _compare(candidate, "<" if self.upper_strict else "<=", self.upper):
                return False
            return True
        if self.lower is not None and self.upper is not None:
            if not _comparable(self.lower, self.upper):
                return False
            if self.lower > self.upper:
                return False
            if self.lower == self.upper and (self.lower_strict or self.upper_strict):
                return False
            # A pinched interval whose single point is excluded is empty.
            if self.lower == self.upper and self.lower in self.not_equal:
                return False
        return True

    # -- implication -----------------------------------------------------------

    def implies(self, condition: AtomicCondition) -> bool:
        """True when every value admitted by this interval satisfies ``condition``.

        This is the per-case analysis of Proposition 3.3 (cases a–d).
        """
        value = condition.value
        op = condition.op

        if self.equal is not _MISSING:
            return _compare(self.equal, op, value)

        lower, upper = self.lower, self.upper
        if op == "=":
            # Only a pinched, non-strict interval at exactly `value` works.
            return (
                lower is not None
                and upper is not None
                and lower == upper == value
                and not self.lower_strict
                and not self.upper_strict
            )
        if op == "!=":
            if value in self.not_equal:
                return True
            if upper is not None and _comparable(upper, value):
                if upper < value or (upper == value and self.upper_strict):
                    return True
            if lower is not None and _comparable(lower, value):
                if lower > value or (lower == value and self.lower_strict):
                    return True
            return False
        if op in ("<", "<="):
            if upper is None or not _comparable(upper, value):
                return False
            if op == "<=":
                return upper <= value
            return upper < value or (upper == value and self.upper_strict)
        if op in (">", ">="):
            if lower is None or not _comparable(lower, value):
                return False
            if op == ">=":
                return lower >= value
            return lower > value or (lower == value and self.lower_strict)
        raise PredicateError(f"unknown operator {op!r}")


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


class Predicate:
    """A conjunction of :class:`AtomicCondition` objects (possibly empty).

    The empty predicate is satisfied by every node (it is used for the dummy
    nodes introduced when decomposing a multi-colour RQ).
    """

    __slots__ = ("_conditions", "_hash", "_compiled")

    def __init__(self, conditions: Iterable[AtomicCondition] = ()):
        items = tuple(conditions)
        for item in items:
            if not isinstance(item, AtomicCondition):
                raise PredicateError(
                    f"expected AtomicCondition, got {type(item).__name__}"
                )
        self._conditions = items
        self._hash = hash(items)
        self._compiled: Optional[Callable[[Mapping[str, Any]], bool]] = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def true(cls) -> "Predicate":
        """The always-true predicate (no conditions)."""
        return cls()

    @classmethod
    def from_dict(cls, equalities: Mapping[str, Any]) -> "Predicate":
        """Build an equality-only predicate, e.g. ``{"job": "doctor"}``."""
        return cls(
            AtomicCondition(attribute, "=", value)
            for attribute, value in equalities.items()
        )

    _TOKEN = re.compile(
        r"\s*(?P<attr>[A-Za-z_][A-Za-z0-9_]*)\s*"
        r"(?P<op><=|>=|!=|=|<|>)\s*"
        r"(?P<value>'[^']*'|\"[^\"]*\"|-?\d+\.\d+|-?\d+|[A-Za-z_][A-Za-z0-9_]*)\s*"
    )

    @classmethod
    def parse(cls, text: str) -> "Predicate":
        """Parse a textual conjunction, e.g. ``"job = 'doctor' & age > 30"``.

        Conditions are separated by ``&``, ``and`` or ``,``.  String literals
        may be quoted with single or double quotes; bare words are treated as
        strings; numeric literals become ints or floats.
        """
        if not text or not text.strip():
            return cls.true()
        stripped = text.strip()
        separator = re.compile(r"\s*(?:&&|&|\band\b|,)\s*")
        conditions: List[AtomicCondition] = []
        pos = 0
        while pos < len(stripped):
            match = cls._TOKEN.match(stripped, pos)
            if not match or match.end() == pos:
                raise PredicateError(
                    f"cannot parse condition at position {pos} in {stripped!r}"
                )
            raw = match.group("value")
            value: Any
            if raw.startswith(("'", '"')):
                value = raw[1:-1]
            else:
                try:
                    value = int(raw)
                except ValueError:
                    try:
                        value = float(raw)
                    except ValueError:
                        value = raw
            conditions.append(AtomicCondition(match.group("attr"), match.group("op"), value))
            pos = match.end()
            if pos >= len(stripped):
                break
            sep = separator.match(stripped, pos)
            if not sep or sep.end() == pos:
                raise PredicateError(
                    f"expected '&' between conditions at position {pos} in {stripped!r}"
                )
            pos = sep.end()
        return cls(conditions)

    # -- accessors -------------------------------------------------------------

    @property
    def conditions(self) -> Tuple[AtomicCondition, ...]:
        return self._conditions

    @property
    def size(self) -> int:
        """Number of atomic conditions (the ``|f_u|`` of the paper)."""
        return len(self._conditions)

    @property
    def attributes(self) -> frozenset:
        return frozenset(c.attribute for c in self._conditions)

    def is_true(self) -> bool:
        """True for the empty (always satisfied) predicate."""
        return not self._conditions

    # -- semantics -------------------------------------------------------------

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        """Node satisfaction ``v ≍ u``: every condition holds on ``attributes``."""
        return all(condition.matches(attributes) for condition in self._conditions)

    def compile(self) -> Callable[[Mapping[str, Any]], bool]:
        """A fast closure equivalent to :meth:`matches`.

        Used by the compiled candidate scans
        (:meth:`repro.graph.csr.CompiledGraph.matching_indices`) to avoid the
        per-condition attribute/method dispatch when sweeping every node of a
        graph.  The closure is built once and cached on the predicate.
        """
        if self._compiled is None:
            conditions = tuple(
                (c.attribute, c.op, c.value) for c in self._conditions
            )
            if not conditions:
                self._compiled = lambda attributes: True
            elif len(conditions) == 1:
                attribute, op, value = conditions[0]

                def check_one(attributes: Mapping[str, Any]) -> bool:
                    got = attributes.get(attribute, _MISSING)
                    return got is not _MISSING and _compare(got, op, value)

                self._compiled = check_one
            else:

                def check_all(attributes: Mapping[str, Any]) -> bool:
                    for attribute, op, value in conditions:
                        got = attributes.get(attribute, _MISSING)
                        if got is _MISSING or not _compare(got, op, value):
                            return False
                    return True

                self._compiled = check_all
        return self._compiled

    def _intervals(self) -> Dict[str, _Interval]:
        table: Dict[str, _Interval] = {}
        for condition in self._conditions:
            table.setdefault(condition.attribute, _Interval()).add(condition)
        return table

    def is_satisfiable(self) -> bool:
        """True when some attribute tuple satisfies the conjunction."""
        return all(interval.satisfiable() for interval in self._intervals().values())

    def implies(self, other: "Predicate") -> bool:
        """Implication ``self ⟹ other`` (the paper's ``u ⊢ w`` with f_u = self).

        Every node satisfying ``self`` also satisfies ``other``.  Follows the
        case analysis in the proof of Proposition 3.3; runs in
        O(|self| · |other|).
        """
        if other.is_true():
            return True
        if not self.is_satisfiable():
            return True
        intervals = self._intervals()
        for condition in other.conditions:
            interval = intervals.get(condition.attribute)
            if interval is None or not interval.implies(condition):
                return False
        return True

    # -- composition -----------------------------------------------------------

    def conjoin(self, other: "Predicate") -> "Predicate":
        """The conjunction of two predicates."""
        return Predicate(self._conditions + other.conditions)

    __and__ = conjoin

    # -- dunder protocol -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self._conditions == other._conditions

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self):
        return iter(self._conditions)

    def __len__(self) -> int:
        return len(self._conditions)

    def __str__(self) -> str:
        if not self._conditions:
            return "TRUE"
        return " & ".join(str(c) for c in self._conditions)

    def __repr__(self) -> str:
        return f"Predicate({str(self)!r})"
