"""Canonical query forms and cache keys (the query identity layer).

Two syntactically different queries frequently denote the same thing: edge
constraints split one colour run differently (``fa.fa^2`` vs ``fa^2.fa``),
predicates spell one interval with different conjuncts (``x > 3 & x != 3``
vs ``x > 3``), and pattern queries carry redundant nodes that ``minPQs``
(Section 3.2) collapses.  Before this module every memo in the library keyed
on the *syntactic* query object, so equivalent queries never shared warm
state.

This module defines one canonical form per query kind and a stable, hashable
``cache_key()`` for it:

* :func:`canonical_regex` — normalises an F-class expression per maximal
  colour run: a run of ``k`` same-colour atoms matches exactly the blocks of
  that colour with length in ``[k, S]`` (``S`` the sum of upper bounds, ``∞``
  if any atom is unbounded), so the canonical spelling is ``k-1`` single
  atoms followed by one atom carrying the remaining budget.  Sound for any
  alphabet and idempotent; atoms of *different* colours are never merged
  (``fa.fa`` means exactly two edges — it is **not** ``fa^2``, which also
  admits one).
* predicate keys — the interval normal form of one conjunction, derived from
  the same per-attribute interval analysis that powers
  :meth:`~repro.query.predicates.Predicate.implies`.  Attributes whose
  conditions mix comparison domains (numbers vs strings vs booleans) fall
  back to a raw syntactic key: the interval abstraction silently drops
  incomparable bounds, so only the literal condition multiset is a sound
  identity there.
* :func:`canonical_pattern_query` / PQ keys — minimise via
  :func:`~repro.query.minimization.minimize_pattern_query`, canonicalise
  every edge regex, then name the nodes canonically: a
  Weisfeiler–Lehman-style refinement over (predicate key, in/out edge keys)
  followed by a bounded permutation search inside refinement ties.  When the
  tie groups are too symmetric to search exhaustively the original node
  names break ties — still deterministic and sound (the key always encodes
  the full structure), merely incomplete for pathologically symmetric
  patterns spelt with different names.

The guarantee every consumer relies on is **soundness**: equal cache keys
imply equivalent queries (``rq_equivalent`` / ``pq_equivalent``, hence equal
answers on every graph).  Completeness holds for the transformations above
(run splits, interval respellings, redundant pattern nodes, node renamings
within the permutation budget); full PQ-equivalence completeness would be
graph-isomorphism-hard and is not attempted.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from math import factorial
from typing import Any, Dict, List, Optional, Tuple

from repro.query.containment import pq_equivalent
from repro.query.minimization import minimize_pattern_query
from repro.query.pq import PatternQuery
from repro.query.predicates import _MISSING, Predicate, _comparable, _Interval
from repro.query.rq import ReachabilityQuery
from repro.regex.fclass import FRegex, RegexAtom, WILDCARD
from repro.session.defaults import (
    CANONICAL_LABELING_LIMIT,
    CANONICAL_REGEX_CACHE_CAPACITY,
)

__all__ = [
    "CanonicalQuery",
    "canonical_regex",
    "canonical_pattern_query",
    "canonicalize_query",
    "predicate_cache_key",
    "regex_cache_key",
]


# ---------------------------------------------------------------------------
# F-class regular expressions
# ---------------------------------------------------------------------------

_regex_memo: "OrderedDict[FRegex, FRegex]" = OrderedDict()
_regex_lock = threading.Lock()


def _canonical_run(color: str, run: List[RegexAtom]) -> List[RegexAtom]:
    """Canonical spelling of one maximal same-colour run.

    A run of ``k`` atoms with upper bounds ``b_1 … b_k`` (lower bounds are
    always one) matches exactly the single-colour blocks of length in
    ``[k, b_1 + … + b_k]``; the canonical spelling with the same language is
    ``k-1`` single atoms plus one atom holding the rest of the budget.
    """
    count = len(run)
    atoms = [RegexAtom(color, 1) for _ in range(count - 1)]
    if any(item.max_count is None for item in run):
        atoms.append(RegexAtom(color, None))
    else:
        total = sum(item.max_count for item in run)
        atoms.append(RegexAtom(color, total - (count - 1)))
    return atoms


def canonical_regex(regex: FRegex) -> FRegex:
    """The canonical form of one F-class expression (same language, memoised)."""
    with _regex_lock:
        cached = _regex_memo.get(regex)
        if cached is not None:
            _regex_memo.move_to_end(regex)
            return cached
    runs: List[Tuple[str, List[RegexAtom]]] = [
        (color, list(group))
        for color, group in itertools.groupby(regex.atoms, key=lambda item: item.color)
    ]
    # Wildcard absorption: a colour run next to an *unbounded* wildcard run
    # collapses to its minimum length — ``c^{k..S}._^+`` matches exactly the
    # strings of ``c^k._^+`` (any surplus ``c`` block past the mandatory
    # ``k`` is read by the wildcard instead), so the canonical spelling
    # drops the surplus budget.  Bounded wildcard runs absorb nothing: their
    # capacity is observable.
    unbounded_wildcard = [
        color == WILDCARD and any(atom.max_count is None for atom in run)
        for color, run in runs
    ]
    for index, (color, run) in enumerate(runs):
        if color == WILDCARD:
            continue
        before = index > 0 and unbounded_wildcard[index - 1]
        after = index + 1 < len(runs) and unbounded_wildcard[index + 1]
        if before or after:
            runs[index] = (color, [RegexAtom(color, 1) for _ in run])
    atoms: List[RegexAtom] = []
    for color, run in runs:
        atoms.extend(_canonical_run(color, run))
    result = FRegex(atoms)
    if result == regex:
        result = regex  # share the object so memo entries stay tiny
    with _regex_lock:
        _regex_memo[regex] = result
        if len(_regex_memo) > CANONICAL_REGEX_CACHE_CAPACITY:
            _regex_memo.popitem(last=False)
    return result


def regex_cache_key(regex: FRegex) -> Tuple:
    """Hashable key of one expression's *language* (canonicalises first)."""
    return tuple(
        (atom.color, atom.max_count) for atom in canonical_regex(regex).atoms
    )


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

def _norm_value(value: Any) -> Any:
    """Collapse values that compare equal across spellings (``5.0`` vs ``5``).

    Booleans are kept in their own tagged domain: ``True == 1`` in Python,
    but as a *bound* ``True`` only compares against other booleans (see
    ``_comparable``), so folding it into the numbers would conflate
    predicates with different answer sets.
    """
    if isinstance(value, bool):
        return ("bool", int(value))
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _value_domain(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    return type(value).__name__


def _bounds_exclude(interval: _Interval, value: Any) -> bool:
    """True when the interval's bounds alone rule out ``attr == value``."""
    upper, lower = interval.upper, interval.lower
    if upper is not None and _comparable(upper, value):
        if upper < value or (upper == value and interval.upper_strict):
            return True
    if lower is not None and _comparable(lower, value):
        if lower > value or (lower == value and interval.lower_strict):
            return True
    return False


def _attribute_entry(attribute: str, conditions: List) -> Tuple:
    """The canonical key of one attribute's conjunction of conditions."""
    interval = _Interval()
    for condition in conditions:
        interval.add(condition)

    if interval.equal is not _MISSING:
        domains = {_value_domain(condition.value) for condition in conditions}
        if len(domains) == 1:
            # Satisfiability already validated the equality against every
            # (tightest) bound and excluded point, and within one domain the
            # looser bounds follow, so the equality alone is the identity.
            return (attribute, ("eq", _norm_value(interval.equal)))
        # Mixed comparison domains: the interval abstraction silently drops
        # incomparable bounds, so only the literal conditions are sound.
        return (
            attribute,
            ("raw", tuple(sorted((c.op, repr(c.value)) for c in conditions))),
        )

    domains = {_value_domain(condition.value) for condition in conditions}
    if len(domains) > 1:
        return (
            attribute,
            ("raw", tuple(sorted((c.op, repr(c.value)) for c in conditions))),
        )

    kept = tuple(
        sorted(
            (
                _norm_value(value)
                for value in interval.not_equal
                if not _bounds_exclude(interval, value)
            ),
            key=repr,
        )
    )
    lower = _norm_value(interval.lower) if interval.lower is not None else None
    upper = _norm_value(interval.upper) if interval.upper is not None else None
    pinched = (
        interval.lower is not None
        and interval.upper is not None
        and interval.lower == interval.upper
        and not interval.lower_strict
        and not interval.upper_strict
    )
    if pinched:
        return (attribute, ("pinch", lower, kept))
    return (
        attribute,
        ("range", lower, interval.lower_strict, upper, interval.upper_strict, kept),
    )


def predicate_cache_key(predicate: Predicate) -> Tuple:
    """Hashable key of one predicate's interval normal form.

    Equal keys imply mutual :meth:`~repro.query.predicates.Predicate.implies`
    (hence identical answer sets); all unsatisfiable predicates share the
    ``("false",)`` key.
    """
    if not predicate.is_satisfiable():
        return ("false",)
    by_attribute: Dict[str, List] = {}
    for condition in predicate.conditions:
        by_attribute.setdefault(condition.attribute, []).append(condition)
    return tuple(
        _attribute_entry(attribute, by_attribute[attribute])
        for attribute in sorted(by_attribute)
    )


# ---------------------------------------------------------------------------
# Pattern queries
# ---------------------------------------------------------------------------

#: Node-count ceiling for the absorbable-node search: each candidate costs a
#: full ``pq_equivalent`` check (worst-case cubic), so the sweep is bounded
#: the same way the labelling permutation search is.
_ABSORB_NODE_LIMIT = 12


def _without_node(pattern: PatternQuery, node: Any) -> PatternQuery:
    result = PatternQuery(name=pattern.name)
    for other in pattern.nodes():
        if other != node:
            result.add_node(other, pattern.predicate(other))
    for edge in pattern.edges():
        if edge.source != node and edge.target != node:
            result.add_edge(edge.source, edge.target, edge.regex)
    return result


def _drop_absorbable_nodes(pattern: PatternQuery) -> PatternQuery:
    """Remove nodes whose deletion is provably answer-preserving.

    ``minPQs`` collapses bisimilar duplicates, but a node whose predicate is
    strictly *tighter* than a twin's can still be redundant: its match set
    (and its edges') is derivable from the rest of the pattern through the
    Theorem-3.2 edge mapping, so the spellings with and without it are
    ``pq_equivalent`` and must share one canonical key.  Every removal is
    verified directly with ``pq_equivalent`` before it is accepted, so the
    step is sound by construction; mutually-absorbable nodes compose (the
    witness mapping of a removed node re-targets through its own witness),
    so the surviving core does not depend on the sweep order.
    """
    if not 1 < pattern.num_nodes <= _ABSORB_NODE_LIMIT:
        return pattern
    current = pattern
    changed = True
    while changed and current.num_nodes > 1:
        changed = False
        for node in sorted(current.nodes(), key=repr):
            candidate = _without_node(current, node)
            if pq_equivalent(candidate, current):
                current = candidate
                changed = True
                break
    return current


def canonical_pattern_query(pattern: PatternQuery) -> PatternQuery:
    """Minimise via ``minPQs`` and canonicalise every edge constraint."""
    minimized = _drop_absorbable_nodes(minimize_pattern_query(pattern, verify=True))
    result = PatternQuery(name=f"{pattern.name}-canonical")
    for node in minimized.nodes():
        result.add_node(node, minimized.predicate(node))
    for edge in minimized.edges():
        result.add_edge(edge.source, edge.target, canonical_regex(edge.regex))
    return result


def _refine_partition(
    pattern: PatternQuery,
    pred_keys: Dict[str, Tuple],
    edge_keys: Dict[Tuple[str, str], Tuple],
) -> Dict[str, int]:
    """Weisfeiler–Lehman-style node partition by structure, name-independent."""
    nodes = list(pattern.nodes())
    signature = {node: repr(pred_keys[node]) for node in nodes}
    for _ in range(max(1, len(nodes))):
        ranks = {text: index for index, text in enumerate(sorted(set(signature.values())))}
        current = {node: ranks[signature[node]] for node in nodes}
        refined = {}
        for node in nodes:
            out_sig = sorted(
                repr((edge_keys[(node, successor)], current[successor]))
                for successor in pattern.successors(node)
            )
            in_sig = sorted(
                repr((edge_keys[(predecessor, node)], current[predecessor]))
                for predecessor in pattern.predecessors(node)
            )
            refined[node] = repr((current[node], out_sig, in_sig))
        signature = refined
    ranks = {text: index for index, text in enumerate(sorted(set(signature.values())))}
    return {node: ranks[signature[node]] for node in nodes}


def _serialize_pq(
    order: List[str],
    pred_keys: Dict[str, Tuple],
    edge_keys: Dict[Tuple[str, str], Tuple],
) -> Tuple:
    index = {node: position for position, node in enumerate(order)}
    return (
        "pq",
        len(order),
        tuple(pred_keys[node] for node in order),
        tuple(
            sorted(
                (index[source], index[target], edge_keys[(source, target)])
                for source, target in edge_keys
            )
        ),
    )


def _pq_cache_key(pattern: PatternQuery) -> Tuple:
    """Cache key of one *already canonical* pattern query."""
    pred_keys = {node: predicate_cache_key(pattern.predicate(node)) for node in pattern.nodes()}
    edge_keys = {
        (edge.source, edge.target): regex_cache_key(edge.regex)
        for edge in pattern.edges()
    }
    partition = _refine_partition(pattern, pred_keys, edge_keys)

    groups: Dict[int, List[str]] = {}
    for node, rank in partition.items():
        groups.setdefault(rank, []).append(node)
    ordered_groups = [sorted(groups[rank], key=repr) for rank in sorted(groups)]

    orderings = 1
    for group in ordered_groups:
        orderings *= factorial(len(group))
        if orderings > CANONICAL_LABELING_LIMIT:
            break
    if orderings > CANONICAL_LABELING_LIMIT:
        # Too symmetric to search: break ties by (deterministic) node name.
        # Sound — the key still encodes the full structure — but two such
        # patterns spelt with different names may miss each other.
        order = [node for group in ordered_groups for node in group]
        return _serialize_pq(order, pred_keys, edge_keys)

    best: Optional[Tuple] = None
    for combo in itertools.product(
        *(itertools.permutations(group) for group in ordered_groups)
    ):
        order = [node for group in combo for node in group]
        candidate = _serialize_pq(order, pred_keys, edge_keys)
        if best is None or repr(candidate) < repr(best):
            best = candidate
    return best


# ---------------------------------------------------------------------------
# The dispatcher
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CanonicalQuery:
    """One query's canonical form plus its hashable identity.

    Attributes
    ----------
    kind:
        ``"rq"``, ``"general_rq"`` or ``"pq"`` (matching the planner's and
        the wire format's kind names).
    query:
        The canonical query object — for RQs a name-normalised copy with the
        canonical regex, for PQs the minimised/canonicalised pattern, for
        general RQs the original (general-regex canonicalisation would be
        PSPACE-hard, so identity there is textual).
    key:
        The hashable cache key; equal keys imply equivalent queries.
    """

    kind: str
    query: Any
    key: Tuple

    def cache_key(self) -> Tuple:
        return self.key


def canonicalize_query(query: Any) -> CanonicalQuery:
    """Canonicalise any supported query object (see :class:`CanonicalQuery`)."""
    if isinstance(query, ReachabilityQuery):
        canonical = ReachabilityQuery(
            query.source_predicate,
            query.target_predicate,
            canonical_regex(query.regex),
        )
        key = (
            "rq",
            predicate_cache_key(canonical.source_predicate),
            predicate_cache_key(canonical.target_predicate),
            regex_cache_key(canonical.regex),
        )
        return CanonicalQuery("rq", canonical, key)
    if isinstance(query, PatternQuery):
        canonical = canonical_pattern_query(query)
        return CanonicalQuery("pq", canonical, _pq_cache_key(canonical))
    from repro.matching.general_rq import GeneralReachabilityQuery

    if isinstance(query, GeneralReachabilityQuery):
        key = (
            "general_rq",
            predicate_cache_key(query.source_predicate),
            predicate_cache_key(query.target_predicate),
            str(query.regex),
        )
        return CanonicalQuery("general_rq", query, key)
    from repro.exceptions import QueryError

    raise QueryError(
        f"cannot canonicalize {type(query).__name__!r}; expected "
        "ReachabilityQuery, GeneralReachabilityQuery or PatternQuery"
    )
