"""Minimization of pattern queries: the ``minPQs`` algorithm (Section 3.2).

Given a PQ ``Q``, ``minPQs`` produces an equivalent PQ of minimum size
(``|Q| = |Vp| + |Ep|``) in cubic time (Theorem 3.4).  The algorithm has three
phases:

1. **Preprocessing** — compute the maximum revised similarity of ``Q`` with
   itself and derive the simulation-equivalence classes of its nodes.
2. **Equivalent-query construction** — collapse each equivalence class to a
   single logical node, drop redundant parallel edges between classes, and
   expand every class into just enough copies to turn the resulting
   multigraph back into a simple graph.
3. **Minimum-query construction** — on the collapsed query, remove edges that
   are subsumed by other edges under the recomputed similarity relation, then
   drop isolated nodes.

The implementation follows the paper closely and, because minimization must
never change query semantics, finishes with an equivalence check against the
input; in the (never observed) event that the check fails, the original query
is returned unchanged, making the function safe to use as an optimizer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.query.containment import (
    pq_equivalent,
    revised_similarity,
    simulation_equivalent_nodes,
)
from repro.query.pq import PatternEdge, PatternQuery
from repro.regex.containment import language_contains, language_equal
from repro.regex.fclass import FRegex


def minimize_pattern_query(pattern: PatternQuery, verify: bool = True) -> PatternQuery:
    """Return a minimum equivalent pattern query (algorithm ``minPQs``).

    Parameters
    ----------
    pattern:
        The query to minimize.
    verify:
        Re-check equivalence of the result with the input and fall back to the
        input if the check fails.  The check is cubic in the query size (tiny
        in practice); disable it only in micro-benchmarks of the raw
        algorithm.
    """
    if pattern.num_nodes == 0:
        return pattern.copy(name=f"{pattern.name}-min")

    # Step 1: similarity + equivalence classes.
    classes = simulation_equivalent_nodes(pattern)

    # Step 2: collapse classes into an equivalent (simple-graph) query.
    collapsed = _collapse_equivalence_classes(pattern, classes)

    # Step 3: remove subsumed edges and isolated nodes.
    minimal = _remove_redundant_edges(collapsed)
    _remove_isolated_nodes(minimal, keep_if_empty=True)

    if minimal.size > pattern.size:
        minimal = pattern.copy(name=f"{pattern.name}-min")
    if verify and not pq_equivalent(minimal, pattern):
        return pattern.copy(name=f"{pattern.name}-min")
    minimal.name = f"{pattern.name}-min"
    return minimal


# ---------------------------------------------------------------------------
# Step 2: equivalent-query construction
# ---------------------------------------------------------------------------

def _collapse_equivalence_classes(
    pattern: PatternQuery, classes: Dict[str, Set[str]]
) -> PatternQuery:
    """Build an equivalent query over (copies of) the equivalence classes."""
    class_of: Dict[str, str] = {}
    for representative, members in classes.items():
        for member in members:
            class_of[member] = representative

    representatives = sorted(classes, key=str)

    # Non-redundant edge constraints between ordered pairs of classes.
    between: Dict[Tuple[str, str], List[FRegex]] = {}
    for edge in pattern.edges():
        key = (class_of[edge.source], class_of[edge.target])
        between.setdefault(key, []).append(edge.regex)
    non_redundant: Dict[Tuple[str, str], List[FRegex]] = {
        key: _non_redundant_constraints(regexes) for key, regexes in between.items()
    }

    # Number of copies of each class: the largest number of parallel
    # constraints arriving from any single class (at least one copy).
    copies: Dict[str, int] = {representative: 1 for representative in representatives}
    for (_, target_class), regexes in non_redundant.items():
        copies[target_class] = max(copies[target_class], len(regexes))

    collapsed = PatternQuery(name=f"{pattern.name}-collapsed")
    copy_names: Dict[str, List[str]] = {}
    for representative in representatives:
        predicate = pattern.predicate(representative)
        names = []
        for index in range(copies[representative]):
            name = representative if index == 0 else f"{representative}#{index}"
            collapsed.add_node(name, predicate)
            names.append(name)
        copy_names[representative] = names

    for (source_class, target_class), regexes in sorted(
        non_redundant.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
    ):
        targets = copy_names[target_class]
        for copy_index, source_name in enumerate(copy_names[source_class]):
            for offset, regex in enumerate(regexes):
                target_name = targets[(copy_index + offset) % len(targets)]
                if collapsed.has_edge(source_name, target_name):
                    continue
                collapsed.add_edge(source_name, target_name, regex)
    return collapsed


def _non_redundant_constraints(regexes: Sequence[FRegex]) -> List[FRegex]:
    """Drop redundant parallel constraints between two equivalence classes.

    An edge is redundant when another parallel edge defines the same language,
    or when its language lies strictly between the languages of two other
    parallel edges (the rule of minPQs step 2).
    """
    # Deduplicate by language equality, keeping the first representative.
    distinct: List[FRegex] = []
    for regex in regexes:
        if not any(language_equal(regex, kept) for kept in distinct):
            distinct.append(regex)
    if len(distinct) <= 2:
        return distinct

    survivors: List[FRegex] = []
    for candidate in distinct:
        others = [regex for regex in distinct if regex is not candidate]
        has_lower = any(language_contains(other, candidate) for other in others)
        has_upper = any(language_contains(candidate, other) for other in others)
        if has_lower and has_upper:
            continue
        survivors.append(candidate)
    return survivors if survivors else distinct[:1]


# ---------------------------------------------------------------------------
# Step 3: minimum-query construction
# ---------------------------------------------------------------------------

def _remove_redundant_edges(pattern: PatternQuery) -> PatternQuery:
    """Remove edges subsumed by other edges under the similarity relation.

    An edge ``e = (u, u')`` is redundant when there are two other edges
    ``e1 = (u1, u1')`` and ``e2 = (u2, u2')`` with ``(u, u1)``, ``(u2, u)``,
    ``(u', u1')`` and ``(u2', u')`` in the revised similarity of the query
    with itself, ``L(f_e1) ⊆ L(f_e)`` and ``L(f_e) ⊆ L(f_e2)``.  Redundant
    edges are removed one at a time, recomputing the similarity after each
    removal so that every removal is justified with the current query.
    """
    result = pattern.copy()
    while True:
        relation = revised_similarity(result, result)
        redundant = _find_redundant_edge(result, relation)
        if redundant is None:
            return result
        result.remove_edge(redundant.source, redundant.target)


def _find_redundant_edge(
    pattern: PatternQuery, relation: Set[Tuple[str, str]]
) -> Optional[PatternEdge]:
    edges = list(pattern.edges())
    for edge in edges:
        for lower in edges:
            if lower.pair == edge.pair:
                continue
            if (edge.source, lower.source) not in relation:
                continue
            if (edge.target, lower.target) not in relation:
                continue
            if not language_contains(lower.regex, edge.regex):
                continue
            for upper in edges:
                if upper.pair == edge.pair:
                    continue
                if (upper.source, edge.source) not in relation:
                    continue
                if (upper.target, edge.target) not in relation:
                    continue
                if language_contains(edge.regex, upper.regex):
                    return edge
    return None


def _remove_isolated_nodes(pattern: PatternQuery, keep_if_empty: bool = False) -> None:
    """Drop nodes with no incident edges (in place)."""
    isolated = [
        node
        for node in list(pattern.nodes())
        if not pattern.successors(node) and not pattern.predecessors(node)
    ]
    if keep_if_empty and len(isolated) == pattern.num_nodes and isolated:
        # All nodes are isolated: keep exactly one, chosen by its predicate
        # rather than its name — minimizing two patterns that are identical
        # up to node renaming must produce the same (canonical) survivor.
        keep = min(isolated, key=lambda node: str(pattern.predicate(node)))
        isolated = [node for node in isolated if node != keep]
    for node in isolated:
        pattern.remove_node(node)
