"""Parameterised random query generator (Section 6, "Query generator").

The paper's generator produces meaningful pattern queries controlled by five
parameters: the number of pattern nodes ``|Vp|``, the number of pattern edges
``|Ep|``, the number of predicates per node ``|pred|``, and two regex
parameters — the per-colour bound ``b`` and the maximum number of colours per
edge ``c`` — so that every edge is constrained by an expression of the form
``c1^b c2^b … ck^b`` with ``1 ≤ k ≤ c``.

To make the generated predicates satisfiable by actual data nodes, the
generator samples attribute values from the data graph it is given (matching
how the paper generates queries against YouTube / GTD / synthetic graphs).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.exceptions import QueryError
from repro.graph.data_graph import DataGraph
from repro.query.pq import PatternQuery
from repro.query.predicates import AtomicCondition, Predicate
from repro.query.rq import ReachabilityQuery
from repro.regex.fclass import FRegex, RegexAtom


class QueryGenerator:
    """Generates random RQs and PQs whose predicates are satisfiable on a graph.

    Parameters
    ----------
    graph:
        The data graph queries will be evaluated on; attribute values and edge
        colours are sampled from it.
    seed:
        Seed of the private random generator (generation is deterministic for
        a given seed and graph).
    """

    def __init__(self, graph: DataGraph, seed: Optional[int] = 0):
        self.graph = graph
        self._random = random.Random(seed)
        self._colors: List[str] = sorted(graph.colors)
        if not self._colors:
            raise QueryError("cannot generate queries for a graph without edges")
        self._attribute_values = self._collect_attribute_values(graph)
        if not self._attribute_values:
            raise QueryError("cannot generate queries for a graph without node attributes")

    @staticmethod
    def _collect_attribute_values(graph: DataGraph) -> Dict[str, List[Any]]:
        values: Dict[str, set] = {}
        for node in graph.nodes():
            for attribute, value in graph.attributes(node).items():
                values.setdefault(attribute, set()).add(value)
        return {
            attribute: sorted(candidates, key=repr)
            for attribute, candidates in values.items()
        }

    # -- building blocks -------------------------------------------------------

    def random_predicate(self, num_conditions: int) -> Predicate:
        """A satisfiable conjunction of ``num_conditions`` atomic conditions.

        Conditions are sampled from the values present in the graph: equality
        on categorical attributes, and equality or one-sided comparisons on
        numeric attributes (so that some node always satisfies the result).
        """
        attributes = list(self._attribute_values)
        self._random.shuffle(attributes)
        chosen = attributes[: max(0, num_conditions)]
        conditions = []
        for attribute in chosen:
            values = self._attribute_values[attribute]
            value = self._random.choice(values)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                op = self._random.choice(["=", "<=", ">=", ">", "<"])
                if op in (">", ">="):
                    value = self._random.choice(values[: max(1, len(values) // 2)])
                elif op in ("<", "<="):
                    value = self._random.choice(values[len(values) // 2:])
            else:
                op = "="
            conditions.append(AtomicCondition(attribute, op, value))
        return Predicate(conditions)

    def random_regex(self, bound: int, max_colors: int) -> FRegex:
        """An expression ``c1^b … ck^b`` with ``1 ≤ k ≤ max_colors``."""
        k = self._random.randint(1, max(1, max_colors))
        atoms = [
            RegexAtom(self._random.choice(self._colors), bound) for _ in range(k)
        ]
        return FRegex(atoms)

    # -- whole queries ----------------------------------------------------------

    def reachability_query(
        self, num_predicates: int = 3, bound: int = 5, max_colors: int = 2
    ) -> ReachabilityQuery:
        """A random RQ (a two-node, one-edge pattern)."""
        return ReachabilityQuery(
            source_predicate=self.random_predicate(num_predicates),
            target_predicate=self.random_predicate(num_predicates),
            regex=self.random_regex(bound, max_colors),
        )

    def pattern_query(
        self,
        num_nodes: int,
        num_edges: int,
        num_predicates: int = 3,
        bound: int = 5,
        max_colors: int = 2,
        name: str = "generated",
    ) -> PatternQuery:
        """A random connected PQ with the requested size parameters.

        The pattern is built from a random spanning tree (guaranteeing
        connectivity) plus extra random edges up to ``num_edges``; if
        ``num_edges`` is smaller than ``num_nodes - 1`` it is raised to that
        minimum, mirroring the paper's use of connected patterns.
        """
        if num_nodes < 1:
            raise QueryError("a pattern query needs at least one node")
        pattern = PatternQuery(name=name)
        node_names = [f"u{i}" for i in range(num_nodes)]
        for node in node_names:
            pattern.add_node(node, self.random_predicate(num_predicates))

        edges_needed = max(num_edges, num_nodes - 1)
        # Random spanning tree: connect node i to a random earlier node.
        for index in range(1, num_nodes):
            parent = node_names[self._random.randrange(index)]
            child = node_names[index]
            source, target = (parent, child) if self._random.random() < 0.7 else (child, parent)
            pattern.add_edge(source, target, self.random_regex(bound, max_colors))

        attempts = 0
        max_attempts = 50 * edges_needed + 100
        while pattern.num_edges < edges_needed and attempts < max_attempts:
            attempts += 1
            source = self._random.choice(node_names)
            target = self._random.choice(node_names)
            if source == target or pattern.has_edge(source, target):
                continue
            pattern.add_edge(source, target, self.random_regex(bound, max_colors))
        return pattern

    def pattern_queries(
        self,
        count: int,
        num_nodes: int,
        num_edges: int,
        num_predicates: int = 3,
        bound: int = 5,
        max_colors: int = 2,
    ) -> List[PatternQuery]:
        """A batch of random pattern queries (the paper averages over 20)."""
        return [
            self.pattern_query(
                num_nodes,
                num_edges,
                num_predicates,
                bound,
                max_colors,
                name=f"generated-{index}",
            )
            for index in range(count)
        ]
