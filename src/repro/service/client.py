"""A blocking client for :class:`~repro.service.service.GraphService`.

Built on :mod:`http.client` (the container ships no HTTP libraries beyond
the standard library), one connection per client, keep-alive across calls.
Thread safety is per-instance: give each thread its own client — exactly
what the load generator does.

Error envelopes come back as :class:`ServiceCallError`, which carries the
structured ``{code, message, retryable}`` payload so callers can branch on
``error.code`` / retry on ``error.retryable`` without parsing messages.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ProtocolError, ServiceError
from repro.service.wire import check_schema_version, decode_result, encode_query

__all__ = ["ServiceClient", "ServiceCallError"]


class ServiceCallError(ServiceError):
    """A structured error envelope returned by the service."""

    def __init__(self, status: int, error: Dict[str, Any]):
        message = str(error.get("message", "service call failed"))
        super().__init__(f"[{error.get('code', 'repro.service.error')}] {message}")
        self.status = status
        self.code = str(error.get("code", "repro.service.error"))
        self.retryable = bool(error.get("retryable", False))


class ServiceClient:
    """Call one running service over HTTP (blocking, keep-alive)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # A dropped keep-alive connection: reconnect once.
                self.close()
                if attempt:
                    raise
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"service returned non-JSON body (status {response.status})"
            ) from exc
        if not isinstance(envelope, dict):
            raise ProtocolError("service response is not a JSON object")
        check_schema_version(envelope, "response")
        if not envelope.get("ok", False):
            raise ServiceCallError(response.status, dict(envelope.get("error", {})))
        return envelope

    def close(self) -> None:
        """Drop the underlying connection (reopened lazily on next call)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def query(self, query: Any, decode: bool = True) -> Tuple[int, Any]:
        """Evaluate one query; returns ``(pinned version, answer)``.

        ``query`` may be a query object or an already wire-shaped dict; with
        ``decode=True`` the answer comes back as the kind-shaped result
        object, otherwise as the raw response payload.
        """
        wire = encode_query(query)
        envelope = self._request("POST", "/v1/query", {"query": wire})
        version = int(envelope["version"])
        if not decode:
            return version, envelope["result"]
        return version, decode_result(envelope["kind"], envelope["result"])

    def batch(self, queries: List[Any], decode: bool = True) -> Tuple[int, List[Any]]:
        """Evaluate many queries from one pinned snapshot."""
        wires = [encode_query(query) for query in queries]
        envelope = self._request("POST", "/v1/batch", {"queries": wires})
        version = int(envelope["version"])
        results = envelope.get("results", [])
        if not decode:
            return version, results
        return version, [
            decode_result(entry["kind"], entry["result"]) for entry in results
        ]

    def update(self, updates: List[Tuple[str, Any, Any, str]]) -> Tuple[int, int]:
        """Apply one update batch; returns ``(new version, net changes)``."""
        payload = {"updates": [list(update) for update in updates]}
        envelope = self._request("POST", "/v1/update", payload)
        return int(envelope["version"]), int(envelope.get("net_changes", 0))

    # -- watch -------------------------------------------------------------------

    def watch(self) -> int:
        """Open a subscription; returns its id."""
        return int(self._request("POST", "/v1/watch")["watch_id"])

    def watch_next(self, watch_id: int, timeout: float = 5.0) -> Optional[Dict[str, Any]]:
        """Long-poll one event (``None`` on timeout)."""
        envelope = self._request("GET", f"/v1/watch/{watch_id}/next?timeout={timeout}")
        return envelope.get("event")

    def watch_close(self, watch_id: int) -> None:
        self._request("DELETE", f"/v1/watch/{watch_id}")

    def watch_stream(self, watch_id: int, max_events: int = 0) -> Iterator[Dict[str, Any]]:
        """Iterate SSE events on a dedicated connection.

        Stops after ``max_events`` events when positive, on shutdown frames,
        or when the server closes the stream.  The initial ``hello`` frame is
        yielded too.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/watch/{watch_id}/stream")
            response = conn.getresponse()
            seen = 0
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    for line in frame.decode("utf-8").splitlines():
                        if not line.startswith("data: "):
                            continue
                        event = json.loads(line[len("data: "):])
                        yield event
                        seen += 1
                        if event.get("type") == "shutdown":
                            return
                        if max_events and seen >= max_events:
                            return
        finally:
            conn.close()
