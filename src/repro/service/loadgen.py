"""Load generator + snapshot-isolation verifier for the serving layer.

:func:`run_load` drives one running :class:`GraphService` with N concurrent
reader threads (each with its own blocking client) while a single writer
thread streams edge updates, then **verifies every answer post hoc**:

* The writer records each applied batch together with the post-batch graph
  version, building a version-indexed update log.
* Each reader records ``(observed version, query, answer)`` per response.
* Verification replays the update log: for every distinct observed version
  it reconstructs the graph at that version (initial copy + the logged
  prefix, applied through the same
  :func:`~repro.matching.incremental.coalesce_update_stream` the service
  uses) and re-evaluates each observed query from scratch.  An answer that
  differs from the from-scratch evaluation at its pinned version — or a
  version that is not a batch boundary, which would mean a pin observed a
  half-applied batch — is a snapshot-isolation violation.

Because the comparison is against a cache-free from-scratch evaluation and
:func:`_normalise` strips all metadata, answers the service served out of
its semantic result cache (``cache-exact`` or ``cache-containment``) are
checked byte-for-byte exactly like freshly evaluated ones — a wrong
containment-derived answer fails verification the same way a stale
snapshot would.

The report (latency percentiles, qps, semantic-cache counters,
verification verdict) is what the CI benchmark-smoke job uploads as
``bench-serve.json``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ProtocolError, ServiceError
from repro.graph.data_graph import DataGraph
from repro.matching.incremental import coalesce_update_stream
from repro.service.client import ServiceCallError, ServiceClient
from repro.session.defaults import (
    DEFAULT_LOAD_DURATION,
    DEFAULT_LOAD_READERS,
    DEFAULT_UPDATE_BATCHES,
)
from repro.session.result import stamped

__all__ = ["build_update_plan", "run_load", "verify_observations"]

Update = Tuple[str, Any, Any, str]


def build_update_plan(
    graph: DataGraph,
    batches: int = DEFAULT_UPDATE_BATCHES,
    batch_size: int = 4,
    seed: int = 7,
) -> List[List[Update]]:
    """A deterministic stream of update batches touching existing nodes.

    Mixes fresh insertions with removals of previously inserted edges so the
    graph keeps churning in both directions without drifting far from the
    fixture; every batch nets at least one real change.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    colors = sorted(graph.colors) or ["fc"]
    if len(nodes) < 2:
        raise ServiceError("update plan needs a graph with at least two nodes")
    plan: List[List[Update]] = []
    inserted: List[Tuple[Any, Any, str]] = []
    for _ in range(batches):
        batch: List[Update] = []
        for _ in range(batch_size):
            if inserted and rng.random() < 0.4:
                edge = inserted.pop(rng.randrange(len(inserted)))
                batch.append(("remove", *edge))
            else:
                source, target = rng.sample(nodes, 2)
                color = rng.choice(colors)
                batch.append(("add", source, target, color))
                inserted.append((source, target, color))
        plan.append(batch)
    return plan


def _percentile(samples: Sequence[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _normalise(kind: str, answer: Any) -> Any:
    """A comparable, order-free view of one answer object."""
    if kind in ("rq", "general_rq"):
        return frozenset(answer.pairs)
    return tuple(sorted(answer.as_frozen().items()))


def _evaluate_plain(kind: str, query: Any, graph: DataGraph) -> Any:
    """From-scratch evaluation on the dict engine (no caches, no session)."""
    if kind == "rq":
        from repro.matching.paths import PathMatcher
        from repro.matching.reachability import evaluate_rq

        return evaluate_rq(query, graph, matcher=PathMatcher(graph))
    if kind == "general_rq":
        from repro.matching.general_rq import evaluate_general_rq

        return evaluate_general_rq(query, graph, engine="dict")
    from repro.matching.join_match import join_match
    from repro.matching.paths import PathMatcher

    return join_match(query, graph, matcher=PathMatcher(graph))


class _Observation:
    __slots__ = ("version", "probe_index", "normalised")

    def __init__(self, version: int, probe_index: int, normalised: Any):
        self.version = version
        self.probe_index = probe_index
        self.normalised = normalised


def verify_observations(
    initial: DataGraph,
    initial_version: int,
    update_log: Sequence[Tuple[int, List[Update]]],
    probes: Sequence[Tuple[str, Any]],
    observations: Sequence[_Observation],
) -> List[str]:
    """Check every observation against from-scratch evaluation.

    Returns human-readable failure strings (empty = all verified).  The
    replay graph advances monotonically through the update log, so the whole
    pass costs one traversal of the log plus one evaluation per distinct
    ``(version, probe)`` pair.
    """
    failures: List[str] = []
    boundaries = {initial_version}
    boundaries.update(version for version, _ in update_log)

    replay = initial.copy()
    replay_version = initial_version
    log_index = 0
    expected_cache: Dict[Tuple[int, int], Any] = {}

    for obs in sorted(observations, key=lambda o: o.version):
        if obs.version not in boundaries:
            failures.append(
                f"version {obs.version} is not an update-batch boundary "
                f"(a pin observed a half-applied batch)"
            )
            continue
        while replay_version < obs.version and log_index < len(update_log):
            post_version, batch = update_log[log_index]
            coalesce_update_stream(replay, batch)
            if replay.version != post_version:
                failures.append(
                    f"replay drift: expected version {post_version} after "
                    f"batch {log_index}, got {replay.version}"
                )
            replay_version = post_version
            log_index += 1
        if replay_version != obs.version:
            failures.append(
                f"no update-log prefix reaches version {obs.version} "
                f"(replay stopped at {replay_version})"
            )
            continue
        key = (obs.version, obs.probe_index)
        if key not in expected_cache:
            kind, query = probes[obs.probe_index]
            expected_cache[key] = _normalise(
                kind, _evaluate_plain(kind, query, replay)
            )
        if obs.normalised != expected_cache[key]:
            failures.append(
                f"probe {obs.probe_index} at version {obs.version}: served "
                f"answer differs from from-scratch evaluation"
            )
    return failures


def run_load(
    host: str,
    port: int,
    initial: DataGraph,
    probes: Sequence[Tuple[str, Any]],
    readers: int = DEFAULT_LOAD_READERS,
    duration: float = DEFAULT_LOAD_DURATION,
    update_plan: Optional[List[List[Update]]] = None,
    update_interval: float = 0.02,
    batch_fraction: float = 0.25,
    seed: int = 7,
) -> Dict[str, Any]:
    """Drive the service at ``host:port`` and verify snapshot isolation.

    ``initial`` must be a copy of the graph the service was booted with,
    taken *before* the burst (the verifier replays updates onto it).
    ``probes`` is a list of ``(kind, query object)`` pairs the readers cycle
    through.  Returns the benchmark report; ``report["ok"]`` is the
    verification verdict and ``report["failures"]`` the details.
    """
    if not probes:
        raise ServiceError("run_load needs at least one probe query")
    plan = update_plan if update_plan is not None else build_update_plan(initial, seed=seed)

    with ServiceClient(host, port) as control:
        initial_version = int(control.health()["version"])

    update_log: List[Tuple[int, List[Update]]] = []
    observations: List[_Observation] = []
    latencies: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()
    stop = threading.Event()
    started = time.perf_counter()
    deadline = started + duration

    def writer() -> None:
        with ServiceClient(host, port) as client:
            for batch in plan:
                if stop.is_set() or time.perf_counter() >= deadline:
                    break
                try:
                    version, _net = client.update(batch)
                except (ServiceCallError, OSError) as exc:
                    with lock:
                        errors.append(f"writer: {exc}")
                    break
                with lock:
                    update_log.append((version, batch))
                time.sleep(update_interval)

    def reader(reader_index: int) -> None:
        rng = random.Random(seed * 1000 + reader_index)
        with ServiceClient(host, port) as client:
            while not stop.is_set() and time.perf_counter() < deadline:
                use_batch = rng.random() < batch_fraction and len(probes) > 1
                begun = time.perf_counter()
                try:
                    if use_batch:
                        indices = [
                            rng.randrange(len(probes))
                            for _ in range(min(3, len(probes)))
                        ]
                        version, answers = client.batch(
                            [probes[i][1] for i in indices]
                        )
                        picked = list(zip(indices, answers))
                    else:
                        index = rng.randrange(len(probes))
                        version, answer = client.query(probes[index][1])
                        picked = [(index, answer)]
                except ServiceCallError as exc:
                    if exc.retryable:
                        time.sleep(0.005)
                        continue
                    with lock:
                        errors.append(f"reader {reader_index}: {exc}")
                    break
                except OSError as exc:
                    with lock:
                        errors.append(f"reader {reader_index}: {exc}")
                    break
                elapsed = time.perf_counter() - begun
                with lock:
                    latencies.append(elapsed)
                    for index, answer in picked:
                        observations.append(
                            _Observation(
                                version, index, _normalise(probes[index][0], answer)
                            )
                        )

    threads = [threading.Thread(target=writer, name="loadgen-writer")]
    threads.extend(
        threading.Thread(target=reader, args=(i,), name=f"loadgen-reader-{i}")
        for i in range(readers)
    )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(duration + 30.0)
    stop.set()
    wall = time.perf_counter() - started

    semantic_cache: Dict[str, Any] = {}
    try:
        with ServiceClient(host, port) as control:
            payload = control.stats()
            semantic_cache = dict(
                payload.get("session", {}).get("semantic_cache", {})
            )
    except (ServiceCallError, ProtocolError, OSError) as exc:
        errors.append(f"stats: {exc}")

    failures = errors + verify_observations(
        initial, initial_version, update_log, probes, observations
    )
    distinct_versions = {obs.version for obs in observations}
    return stamped(
        {
            "ok": not failures,
            "readers": readers,
            "duration_seconds": round(wall, 3),
            "requests": len(latencies),
            "observations": len(observations),
            "updates_applied": len(update_log),
            "distinct_versions_observed": len(distinct_versions),
            "qps": round(len(latencies) / wall, 2) if wall > 0 else 0.0,
            "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "latency_max_ms": round(max(latencies) * 1e3, 3) if latencies else 0.0,
            "semantic_cache": semantic_cache,
            "failures": failures[:20],
        }
    )
