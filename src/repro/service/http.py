"""A minimal asyncio HTTP/1.1 layer for the serving endpoint.

The container ships no third-party HTTP framework, so the service speaks
HTTP directly over :func:`asyncio.start_server`: request-line + headers +
``Content-Length`` bodies in, JSON responses (and ``text/event-stream`` for
subscriptions) out, with keep-alive.  Deliberately small — just enough
protocol for JSON request/response and server-sent events, not a general
web server — and free of any knowledge of graphs or sessions (that lives in
:mod:`repro.service.service`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ProtocolError

#: Largest accepted request body; protects the loop from hostile payloads.
MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str, headers: Dict[str, str], body: bytes):
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query: Dict[str, str] = {
            key: values[-1] for key, values in parse_qs(parts.query).items()
        }
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON (``None`` for an empty body)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request; ``None`` on a cleanly closed connection."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request headers too large") from exc
    if len(header_blob) > _MAX_HEADER_BYTES:
        raise ProtocolError("request headers too large")
    lines = header_blob.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ProtocolError(f"malformed request line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(f"request body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    return Request(method.upper(), target, headers, body)


def _head(status: int, content_type: str, length: Optional[int], keep_alive: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append("Connection: keep-alive" if keep_alive else "Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def write_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    keep_alive: bool = True,
) -> None:
    """Queue one JSON response on the connection."""
    from repro.jsonutil import jsonable

    body = json.dumps(payload, sort_keys=True, default=jsonable).encode("utf-8")
    writer.write(_head(status, "application/json", len(body), keep_alive) + body)


def start_event_stream(writer: asyncio.StreamWriter) -> None:
    """Open a server-sent-events response (the connection stays dedicated)."""
    writer.write(_head(200, "text/event-stream", None, keep_alive=False))


def write_event(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Queue one SSE ``data:`` frame."""
    from repro.jsonutil import jsonable

    body = json.dumps(payload, sort_keys=True, default=jsonable)
    writer.write(f"data: {body}\n\n".encode("utf-8"))


def parse_timeout(request: Request, default: float, ceiling: float) -> float:
    """The ``timeout`` query parameter, clamped to ``(0, ceiling]``."""
    raw = request.query.get("timeout")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ProtocolError(f"timeout {raw!r} is not a number") from None
    return max(0.0, min(value, ceiling))


Address = Tuple[str, int]
