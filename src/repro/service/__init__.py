"""The snapshot-isolated serving layer (service, wire format, client, loadgen).

:class:`GraphService` owns one :class:`~repro.session.session.GraphSession`
and serves it over asyncio HTTP/JSON: reads pin immutable store snapshots
(many concurrent readers), updates apply through the single writer path, and
``watch`` subscriptions stream change events over long-poll or SSE.  See
:mod:`repro.service.wire` for the versioned payload shapes,
:class:`ServiceClient` for the blocking client, and :func:`run_load` for the
load generator that doubles as a snapshot-isolation verifier.
"""

from repro.service.client import ServiceCallError, ServiceClient
from repro.service.loadgen import build_update_plan, run_load, verify_observations
from repro.service.service import GraphService, ServiceConfig, ServiceHandle
from repro.service.wire import (
    SCHEMA_VERSION,
    decode_query,
    decode_result,
    encode_query,
    error_envelope,
    ok_envelope,
)

__all__ = [
    "SCHEMA_VERSION",
    "GraphService",
    "ServiceConfig",
    "ServiceHandle",
    "ServiceClient",
    "ServiceCallError",
    "build_update_plan",
    "run_load",
    "verify_observations",
    "decode_query",
    "decode_result",
    "encode_query",
    "error_envelope",
    "ok_envelope",
]
