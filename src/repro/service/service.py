"""GraphService: the snapshot-isolated asyncio serving layer.

One service owns one :class:`~repro.session.session.GraphSession` and
exposes it over HTTP/JSON (see :mod:`repro.service.wire` for the payload
shapes).  The concurrency contract is the point of the module:

* **Reads pin a snapshot.**  Every query batch pins the session once
  (:meth:`GraphSession.pin`), executes against that immutable
  ``(compiled CSR base, overlay slice)`` pair in a worker thread, and
  releases the pin.  Compaction rebinds the live store's base — it never
  mutates the arrays a pinned snapshot holds — so many readers proceed
  while the writer moves the graph forward.
* **One writer.**  Updates apply in the event-loop thread, serialised by
  the loop itself (and by the session lock against in-process callers).
  Pinning also happens in the loop thread, so a pin can never observe a
  half-applied batch.
* **Batching.**  The dispatcher drains up to ``batch_max`` queued reads
  and serves them from a single pinned snapshot — the service-side analogue
  of :meth:`GraphSession.execute_many`.
* **Admission control.**  Beyond ``max_inflight`` queued reads the service
  fails fast with :class:`~repro.exceptions.OverloadedError` (HTTP 503,
  ``retryable: true``) instead of building an unbounded queue.

Endpoints (all JSON, all stamped with ``schema_version``)::

    GET    /v1/health               liveness + graph version
    GET    /v1/stats                session/store/service counters
    POST   /v1/query                {"query": {...}} -> one result
    POST   /v1/batch                {"queries": [...]} -> results, one pin
    POST   /v1/update               {"updates": [[op, u, v, color], ...]}
    POST   /v1/watch                open a subscription -> {"watch_id": ...}
    GET    /v1/watch/<id>/next      long-poll one update event
    GET    /v1/watch/<id>/stream    the same events as SSE frames
    DELETE /v1/watch/<id>           close a subscription
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import (
    OverloadedError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.service import http as shttp
from repro.service.wire import decode_query, error_envelope, ok_envelope
from repro.session.defaults import DEFAULT_MAX_INFLIGHT
from repro.session.session import GraphSession

__all__ = ["ServiceConfig", "GraphService", "ServiceHandle"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`GraphService`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`GraphService.address`); the defaults suit tests and the CLI's
    local serving mode.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Queued-read ceiling before requests are rejected with a 503.
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    #: Largest number of reads served from one pinned snapshot.
    batch_max: int = 8
    #: Dispatcher tasks (and worker threads) executing read batches.
    read_concurrency: int = 4
    #: Events buffered per watch subscriber before the oldest is dropped.
    watch_buffer: int = 256
    #: Default / maximum long-poll wait in seconds.
    poll_default: float = 10.0
    poll_ceiling: float = 30.0


class _Watch:
    """One subscription: an asyncio queue fed by the writer path."""

    __slots__ = ("id", "queue", "dropped")

    def __init__(self, watch_id: int, buffer: int):
        self.id = watch_id
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=buffer)
        self.dropped = 0

    def publish(self, event: Dict[str, Any]) -> None:
        while True:
            try:
                self.queue.put_nowait(event)
                return
            except asyncio.QueueFull:
                with contextlib.suppress(asyncio.QueueEmpty):
                    self.queue.get_nowait()
                    self.dropped += 1


class GraphService:
    """Serve one session over asyncio HTTP with snapshot-isolated reads."""

    def __init__(self, session: GraphSession, config: Optional[ServiceConfig] = None):
        self.session = session
        self.config = config or ServiceConfig()
        self.address: Optional[shttp.Address] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatchers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()
        self._watches: Dict[int, _Watch] = {}
        self._next_watch_id = 1
        self._inflight = 0
        self.counters: Dict[str, int] = {
            "requests": 0,
            "queries": 0,
            "batches": 0,
            "updates": 0,
            "rejected": 0,
            "errors": 0,
        }

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> shttp.Address:
        """Bind the listening socket and launch the dispatcher tasks."""
        if self._server is not None:
            raise ServiceError("the service is already running")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.read_concurrency,
            thread_name_prefix="repro-serve",
        )
        self._dispatchers = [
            self._loop.create_task(self._dispatch_loop())
            for _ in range(self.config.read_concurrency)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        """Stop accepting, cancel dispatchers, release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = self._dispatchers + [
            task for task in self._connections if not task.done()
        ]
        for task in pending:
            task.cancel()
        for task in pending:
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception:
                # Teardown races (a connection dying mid-cancel) must not
                # abort shutdown, but they are still errors worth counting.
                self.counters["errors"] += 1
        self._dispatchers = []
        self._connections.clear()
        for watch in list(self._watches.values()):
            watch.publish({"type": "shutdown"})
        self._watches.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    def run_in_thread(self) -> "ServiceHandle":
        """Boot the service on a fresh loop in a daemon thread.

        The in-process form used by tests, the load generator and the CLI's
        ``--load-burst`` mode: returns once the socket is bound.
        """
        started = threading.Event()
        failure: List[BaseException] = []
        handle = ServiceHandle(self)

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            handle.loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # pragma: no cover - bind failures
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        thread = threading.Thread(target=runner, name="repro-service", daemon=True)
        handle.thread = thread
        thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return handle

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await shttp.read_request(reader)
                except ProtocolError as exc:
                    self.counters["errors"] += 1
                    shttp.write_json(writer, 400, error_envelope(exc), keep_alive=False)
                    break
                if request is None:
                    break
                self.counters["requests"] += 1
                keep_open = await self._route(request, writer)
                await writer.drain()
                if not keep_open:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels open connections; exit quietly.  On 3.11+
            # the cancellation must also be uncancelled, else the task is
            # re-marked cancelled on return and the stdlib stream
            # done-callback logs a spurious CancelledError at shutdown.
            if task is not None:
                getattr(task, "uncancel", lambda: None)()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass  # the peer vanishing mid-close is routine
            except Exception:
                # Anything else failing to close the transport is a real
                # error; count it rather than suppressing it silently.
                self.counters["errors"] += 1

    async def _route(self, request: Request, writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns False when the connection must close."""
        method, path = request.method, request.path
        try:
            if path == "/v1/health" and method == "GET":
                shttp.write_json(writer, 200, self._health())
            elif path == "/v1/stats" and method == "GET":
                shttp.write_json(writer, 200, self._stats())
            elif path == "/v1/query" and method == "POST":
                shttp.write_json(writer, 200, await self._serve_query(request))
            elif path == "/v1/batch" and method == "POST":
                shttp.write_json(writer, 200, await self._serve_batch(request))
            elif path == "/v1/update" and method == "POST":
                shttp.write_json(writer, 200, self._serve_update(request))
            elif path == "/v1/watch" and method == "POST":
                shttp.write_json(writer, 200, self._open_watch())
            elif path.startswith("/v1/watch/"):
                return await self._route_watch(request, writer)
            else:
                self.counters["errors"] += 1
                status = 404
                error = ProtocolError(f"no route for {method} {path}")
                shttp.write_json(writer, status, error_envelope(error))
        except OverloadedError as exc:
            self.counters["rejected"] += 1
            shttp.write_json(writer, 503, error_envelope(exc))
        except ReproError as exc:
            self.counters["errors"] += 1
            shttp.write_json(writer, 400, error_envelope(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.counters["errors"] += 1
            shttp.write_json(writer, 500, error_envelope(exc))
        return True

    # -- plain endpoints ---------------------------------------------------------

    def _health(self) -> Dict[str, Any]:
        graph = self.session.graph
        return ok_envelope(
            status="serving",
            graph=graph.name,
            version=graph.version,
            nodes=graph.num_nodes,
            edges=graph.num_edges,
        )

    def _stats(self) -> Dict[str, Any]:
        return ok_envelope(
            version=self.session.graph.version,
            session=self.session.counters(),
            store=self.session.store_stats(),
            service={**self.counters, "inflight": self._inflight,
                     "watches": len(self._watches)},
        )

    # -- the read path -----------------------------------------------------------

    def _admit(self, count: int) -> None:
        if self._inflight + count > self.config.max_inflight:
            raise OverloadedError(
                f"read queue is full ({self._inflight} inflight, "
                f"limit {self.config.max_inflight}); retry later"
            )
        self._inflight += count

    async def _submit_reads(
        self, entries: List[Tuple[str, Any]]
    ) -> Tuple[int, List[Dict[str, Any]]]:
        """Queue decoded reads and await their results (one future each)."""
        assert self._queue is not None and self._loop is not None
        self._admit(len(entries))
        futures = [self._loop.create_future() for _ in entries]
        for (kind, query), future in zip(entries, futures):
            self._queue.put_nowait((kind, query, future))
        try:
            payloads = await asyncio.gather(*futures)
        finally:
            self._inflight -= len(entries)
        version = payloads[0]["version"] if payloads else self.session.graph.version
        return version, payloads

    async def _serve_query(self, request: Request) -> Dict[str, Any]:
        body = request.json()
        if not isinstance(body, dict):
            raise ProtocolError("expected a JSON object with a 'query' member")
        kind, query = decode_query(body.get("query", body))
        version, payloads = await self._submit_reads([(kind, query)])
        self.counters["queries"] += 1
        return ok_envelope(version=version, kind=kind, result=payloads[0]["result"])

    async def _serve_batch(self, request: Request) -> Dict[str, Any]:
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("queries"), list):
            raise ProtocolError("expected a JSON object with a 'queries' array")
        entries = [decode_query(item) for item in body["queries"]]
        if not entries:
            return ok_envelope(version=self.session.graph.version, results=[])
        version, payloads = await self._submit_reads(entries)
        self.counters["queries"] += len(entries)
        return ok_envelope(
            version=version,
            results=[
                {"kind": kind, "result": payload["result"]}
                for (kind, _), payload in zip(entries, payloads)
            ],
        )

    async def _dispatch_loop(self) -> None:
        """Drain the read queue in batches, one pinned snapshot per batch."""
        assert self._queue is not None and self._loop is not None
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            # Pin in the loop thread: updates also apply here, so the pin
            # always observes a fully applied (or not yet applied) batch.
            snapshot = self.session.pin()
            self.counters["batches"] += 1
            try:
                results = await self._loop.run_in_executor(
                    self._executor, self._execute_batch, snapshot, batch
                )
            finally:
                snapshot.release()
            for (_, _, future), outcome in zip(batch, results):
                if future.cancelled():
                    continue
                if isinstance(outcome, Exception):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)

    @staticmethod
    def _execute_batch(snapshot: Any, batch: List[Tuple[str, Any, Any]]) -> List[Any]:
        """Run one pinned batch in a worker thread (exceptions per-entry)."""
        outcomes: List[Any] = []
        for _kind, query, _future in batch:
            try:
                result = snapshot.execute(query)
                outcomes.append(
                    {"version": snapshot.version, "result": result.to_dict()}
                )
            except Exception as exc:  # noqa: BLE001 - reported per entry
                outcomes.append(exc)
        return outcomes

    # -- the write path ----------------------------------------------------------

    def _serve_update(self, request: Request) -> Dict[str, Any]:
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("updates"), list):
            raise ProtocolError("expected a JSON object with an 'updates' array")
        updates: List[Tuple[str, Any, Any, str]] = []
        for entry in body["updates"]:
            if not isinstance(entry, (list, tuple)) or len(entry) != 4:
                raise ProtocolError(
                    "each update must be a [op, source, target, color] quadruple"
                )
            op = entry[0]
            if op not in ("add", "remove"):
                raise ProtocolError(f"unknown update op {op!r}")
            updates.append((op, entry[1], entry[2], str(entry[3])))
        # Applied in the event-loop thread: serialised against pinning above.
        delta = self.session.apply_updates(updates)
        self.counters["updates"] += 1
        version = self.session.graph.version
        event = {
            "type": "update",
            "version": version,
            "inserted": [list(edge) for edge in delta.inserted],
            "deleted": [list(edge) for edge in delta.deleted],
            "new_nodes": list(delta.new_nodes),
            "net_changes": delta.net_changes,
        }
        for watch in self._watches.values():
            watch.publish(event)
        return ok_envelope(version=version, net_changes=delta.net_changes)

    # -- watch subscriptions -----------------------------------------------------

    def _open_watch(self) -> Dict[str, Any]:
        watch = _Watch(self._next_watch_id, self.config.watch_buffer)
        self._next_watch_id += 1
        self._watches[watch.id] = watch
        return ok_envelope(watch_id=watch.id, version=self.session.graph.version)

    def _find_watch(self, token: str) -> _Watch:
        try:
            watch = self._watches[int(token)]
        except (KeyError, ValueError):
            raise ProtocolError(f"unknown watch {token!r}") from None
        return watch

    async def _route_watch(self, request: Request, writer: asyncio.StreamWriter) -> bool:
        parts = request.path.split("/")
        # /v1/watch/<id>[/next|/stream] -> ["", "v1", "watch", id, ...]
        if len(parts) == 4 and request.method == "DELETE":
            watch = self._find_watch(parts[3])
            del self._watches[watch.id]
            shttp.write_json(writer, 200, ok_envelope(closed=watch.id))
            return True
        if len(parts) == 5 and parts[4] == "next" and request.method == "GET":
            watch = self._find_watch(parts[3])
            timeout = shttp.parse_timeout(
                request, self.config.poll_default, self.config.poll_ceiling
            )
            try:
                event = await asyncio.wait_for(watch.queue.get(), timeout)
            except asyncio.TimeoutError:
                event = None
            shttp.write_json(
                writer, 200, ok_envelope(event=event, dropped=watch.dropped)
            )
            return True
        if len(parts) == 5 and parts[4] == "stream" and request.method == "GET":
            watch = self._find_watch(parts[3])
            shttp.start_event_stream(writer)
            shttp.write_event(
                writer, ok_envelope(type="hello", version=self.session.graph.version)
            )
            await writer.drain()
            try:
                while watch.id in self._watches:
                    try:
                        event = await asyncio.wait_for(
                            watch.queue.get(), self.config.poll_ceiling
                        )
                    except asyncio.TimeoutError:
                        event = {"type": "keepalive"}
                    shttp.write_event(writer, event)
                    await writer.drain()
                    if event.get("type") == "shutdown":
                        break
            except (ConnectionError, asyncio.CancelledError):
                pass
            return False  # the stream owns the connection until it closes
        raise ProtocolError(f"no route for {request.method} {request.path}")


class ServiceHandle:
    """A service running on a background thread (see ``run_in_thread``)."""

    def __init__(self, service: GraphService):
        self.service = service
        self.thread: Optional[threading.Thread] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def address(self) -> shttp.Address:
        assert self.service.address is not None
        return self.service.address

    def call(self, coro) -> Any:
        """Run one coroutine on the service loop from any thread."""
        assert self.loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the loop and join the thread (idempotent)."""
        loop, thread = self.loop, self.thread
        if loop is None or thread is None or not thread.is_alive():
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout)
        if thread.is_alive():  # pragma: no cover - diagnostics only
            raise ServiceError("service thread did not stop in time")

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


Request = shttp.Request
