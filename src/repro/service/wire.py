"""The versioned wire format of the serving layer.

Requests and responses are JSON objects stamped with the library-wide
:data:`~repro.session.result.SCHEMA_VERSION` (shared with the result
``to_dict`` family and the CLI ``--json`` paths).  Queries travel as their
textual forms — predicates render through ``str(Predicate)`` and parse back
through :meth:`Predicate.parse`; F-class and general regexes round-trip the
same way — so the wire carries no pickled objects, and any JSON-speaking
client can build requests.

Request shapes (the ``query`` member of ``POST /v1/query`` and each element
of ``POST /v1/batch``)::

    {"kind": "rq",         "source": "...", "target": "...", "regex": "fa^2.fn"}
    {"kind": "general_rq", "source": "...", "target": "...", "regex": "(fa|fn)*"}
    {"kind": "pq", "nodes": [["P", "job = 'professor'"], ...],
                   "edges": [["P", "S", "advises"], ...], "name": "..."}

Malformed payloads raise :class:`~repro.exceptions.ProtocolError`
(``repro.service.protocol``, non-retryable); every error response renders
the structured ``{code, message, retryable}`` payload of
:meth:`~repro.exceptions.ReproError.payload`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ProtocolError, ReproError
from repro.session.result import SCHEMA_VERSION, check_schema_version, stamped

__all__ = [
    "SCHEMA_VERSION",
    "decode_query",
    "encode_query",
    "decode_result",
    "ok_envelope",
    "error_envelope",
]

_QUERY_KINDS = ("rq", "general_rq", "pq")


def _require(payload: Dict[str, Any], key: str, kind: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ProtocolError(f"{kind} query is missing the {key!r} field") from None


def decode_query(payload: Any) -> Tuple[str, Any]:
    """Decode one wire query into ``(kind, query object)``.

    Raises :class:`ProtocolError` for anything malformed — including query
    texts the parsers reject (the parse errors keep their own codes when
    they derive from :class:`ReproError`; the service maps both to a 400).
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"query must be a JSON object, got {type(payload).__name__}")
    check_schema_version(payload, "query")
    kind = payload.get("kind", "rq")
    if kind not in _QUERY_KINDS:
        raise ProtocolError(
            f"unknown query kind {kind!r}; expected one of {_QUERY_KINDS}"
        )
    if kind == "rq":
        from repro.query.rq import ReachabilityQuery

        return kind, ReachabilityQuery(
            payload.get("source", ""),
            payload.get("target", ""),
            _require(payload, "regex", kind),
        )
    if kind == "general_rq":
        from repro.matching.general_rq import GeneralReachabilityQuery

        return kind, GeneralReachabilityQuery(
            payload.get("source", ""),
            payload.get("target", ""),
            _require(payload, "regex", kind),
        )
    from repro.query.pq import PatternQuery

    pattern = PatternQuery(name=str(payload.get("name", "wire-pq")))
    for entry in _require(payload, "nodes", kind):
        node, predicate = entry
        pattern.add_node(node, predicate or None)
    for entry in _require(payload, "edges", kind):
        source, target, regex = entry
        pattern.add_edge(source, target, regex)
    return kind, pattern


def encode_query(query: Any) -> Dict[str, Any]:
    """Encode one query object into its wire form (inverse of decode)."""
    from repro.matching.general_rq import GeneralReachabilityQuery
    from repro.query.pq import PatternQuery
    from repro.query.rq import ReachabilityQuery

    if isinstance(query, ReachabilityQuery):
        return stamped(
            {
                "kind": "rq",
                "source": _predicate_text(query.source_predicate),
                "target": _predicate_text(query.target_predicate),
                "regex": str(query.regex),
            }
        )
    if isinstance(query, GeneralReachabilityQuery):
        return stamped(
            {
                "kind": "general_rq",
                "source": _predicate_text(query.source_predicate),
                "target": _predicate_text(query.target_predicate),
                "regex": str(query.regex),
            }
        )
    if isinstance(query, PatternQuery):
        return stamped(
            {
                "kind": "pq",
                "name": query.name,
                "nodes": [
                    [node, _predicate_text(query.predicate(node))]
                    for node in query.nodes()
                ],
                "edges": [
                    [edge.source, edge.target, str(edge.regex)]
                    for edge in query.edges()
                ],
            }
        )
    if isinstance(query, dict):
        # Already wire-shaped (client callers may hand dicts straight in).
        # An explicit stamp is preserved so version mismatches still surface
        # server-side; only unstamped dicts get the current stamp.
        return dict(query) if "schema_version" in query else stamped(query)
    raise ProtocolError(f"cannot encode {type(query).__name__} as a wire query")


def _predicate_text(predicate: Optional[Any]) -> str:
    # The always-true predicate renders as "TRUE", which Predicate.parse
    # does not speak; the empty string coerces back to it.
    if predicate is None or getattr(predicate, "is_true", lambda: False)():
        return ""
    return str(predicate)


def decode_result(kind: str, payload: Dict[str, Any]) -> Any:
    """Rebuild the kind-shaped answer object from one response ``result``.

    The inverse of the ``answer`` member emitted by
    :meth:`~repro.session.result.QueryResult.to_dict` — used by the
    blocking client so callers get real result objects back.
    """
    answer = payload.get("answer", payload)
    if kind == "rq":
        from repro.matching.reachability import ReachabilityResult

        return ReachabilityResult.from_dict(answer)
    if kind == "general_rq":
        from repro.matching.general_rq import GeneralReachabilityResult

        return GeneralReachabilityResult.from_dict(answer)
    if kind == "pq":
        from repro.matching.result import PatternMatchResult

        return PatternMatchResult.from_dict(answer)
    raise ProtocolError(f"unknown result kind {kind!r}")


def ok_envelope(**members: Any) -> Dict[str, Any]:
    """A successful response envelope: ``{schema_version, ok: true, ...}``."""
    return stamped({"ok": True, **members})


def error_envelope(error: Exception) -> Dict[str, Any]:
    """The error response envelope carrying ``{code, message, retryable}``.

    Library errors keep their stable codes; anything else maps to the
    generic ``repro.service.error`` (non-retryable).
    """
    if isinstance(error, ReproError):
        payload = error.payload()
    else:
        payload = {
            "code": "repro.service.error",
            "message": str(error) or type(error).__name__,
            "retryable": False,
        }
    return stamped({"ok": False, "error": payload})
