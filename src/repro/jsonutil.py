"""The one JSON-coercion policy for every machine-readable output surface.

``repro plan/rq/experiment --json``, :meth:`QueryPlan.to_dict` and
:meth:`ExperimentReport.to_json_dict` all need the same guarantee: the
payload always serialises, with values JSON can't represent passed through
``repr``.  Keeping the policy here means the CLI schemas cannot silently
diverge between commands.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping


def jsonable(value: Any) -> Any:
    """``value`` if JSON can represent it directly, else its ``repr``."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def jsonable_mapping(mapping: Mapping[str, Any]) -> Dict[str, Any]:
    """A plain dict with every value passed through :func:`jsonable`."""
    return {key: jsonable(value) for key, value in mapping.items()}
