"""Data model for the restricted regular-expression class ``F``.

An :class:`FRegex` is a non-empty concatenation of :class:`RegexAtom` objects.
Each atom constrains a *block* of consecutive edges on a path:

* ``RegexAtom("fa")`` — exactly one ``fa`` edge (``c``);
* ``RegexAtom("fa", 3)`` — between one and three ``fa`` edges (``c^3``);
* ``RegexAtom("fa", None)`` — one or more ``fa`` edges (``c^+``);
* ``RegexAtom("_", 2)`` — between one and two edges of *any* colour.

The semantics follow Section 2 of the paper: ``c^k = c ∪ c² ∪ … ∪ c^k`` (so a
block is always non-empty) and ``_`` stands for an arbitrary colour of the
data-graph alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.exceptions import RegexSyntaxError

#: The wildcard colour symbol, standing for any colour in the alphabet.
WILDCARD = "_"


@dataclass(frozen=True, order=True)
class RegexAtom:
    """A single component ``c``, ``c^k`` or ``c^+`` of an F-class expression.

    Parameters
    ----------
    color:
        Edge colour this atom matches, or :data:`WILDCARD` for any colour.
    max_count:
        Upper bound on the block length.  ``1`` corresponds to a plain colour
        ``c``, an integer ``k >= 1`` to ``c^k`` and ``None`` to ``c^+``
        (unbounded).  The lower bound is always one.
    """

    color: str
    max_count: Optional[int] = 1

    def __post_init__(self) -> None:
        if not self.color:
            raise RegexSyntaxError("atom colour must be a non-empty string")
        if self.max_count is not None and self.max_count < 1:
            raise RegexSyntaxError(
                f"atom bound must be >= 1, got {self.max_count!r}"
            )

    @property
    def is_wildcard(self) -> bool:
        """True when this atom matches any colour."""
        return self.color == WILDCARD

    @property
    def is_unbounded(self) -> bool:
        """True for ``c^+`` atoms."""
        return self.max_count is None

    def admits_color(self, color: str) -> bool:
        """Return True if an edge of ``color`` may belong to this block."""
        return self.is_wildcard or self.color == color

    def admits_length(self, length: int) -> bool:
        """Return True if a block of ``length`` edges is allowed."""
        if length < 1:
            return False
        return self.max_count is None or length <= self.max_count

    def length_range(self) -> Tuple[int, Optional[int]]:
        """Return the ``(min, max)`` number of edges this atom can cover."""
        return 1, self.max_count

    def __str__(self) -> str:
        if self.max_count is None:
            return f"{self.color}^+"
        if self.max_count == 1:
            return self.color
        return f"{self.color}^{self.max_count}"


def atom(color: str, k: int = 1) -> RegexAtom:
    """Build a bounded atom ``color^k`` (``k`` defaults to a single edge)."""
    return RegexAtom(color, k)


def plus(color: str) -> RegexAtom:
    """Build an unbounded atom ``color^+``."""
    return RegexAtom(color, None)


class FRegex:
    """A non-empty concatenation of :class:`RegexAtom` objects.

    Instances are immutable and hashable; two expressions compare equal when
    their atom sequences are identical (syntactic equality — use
    :func:`repro.regex.containment.language_equal` for language equality).
    """

    __slots__ = ("_atoms", "_hash")

    def __init__(self, atoms: Iterable[RegexAtom]):
        atoms = tuple(atoms)
        if not atoms:
            raise RegexSyntaxError("an F-class expression must have at least one atom")
        for item in atoms:
            if not isinstance(item, RegexAtom):
                raise RegexSyntaxError(f"expected RegexAtom, got {type(item).__name__}")
        object.__setattr__(self, "_atoms", atoms)
        object.__setattr__(self, "_hash", hash(atoms))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "FRegex":
        """Parse ``text`` with :func:`repro.regex.parser.parse_fregex`."""
        from repro.regex.parser import parse_fregex

        return parse_fregex(text)

    @classmethod
    def single(cls, color: str, k: Optional[int] = 1) -> "FRegex":
        """Build a one-atom expression ``color^k`` (``k=None`` for ``+``)."""
        return cls([RegexAtom(color, k)])

    def concat(self, other: "FRegex") -> "FRegex":
        """Return the concatenation ``self other``."""
        return FRegex(self._atoms + other._atoms)

    # -- basic accessors -------------------------------------------------------

    @property
    def atoms(self) -> Tuple[RegexAtom, ...]:
        """The atom sequence of this expression."""
        return self._atoms

    @property
    def num_atoms(self) -> int:
        """The length ``|F|`` of the expression as defined in the paper."""
        return len(self._atoms)

    @property
    def colors(self) -> frozenset:
        """Set of concrete colours mentioned (excluding the wildcard)."""
        return frozenset(a.color for a in self._atoms if not a.is_wildcard)

    @property
    def has_wildcard(self) -> bool:
        """True if any atom is a wildcard."""
        return any(a.is_wildcard for a in self._atoms)

    @property
    def min_length(self) -> int:
        """Shortest path length (number of edges) in the language."""
        return len(self._atoms)

    @property
    def max_length(self) -> Optional[int]:
        """Longest path length in the language, or None if unbounded."""
        total = 0
        for item in self._atoms:
            if item.max_count is None:
                return None
            total += item.max_count
        return total

    def decompose(self) -> Tuple["FRegex", ...]:
        """Split into single-atom expressions, as used by the matrix method.

        The paper (Section 4, "RQ with multiple colors") rewrites a query with
        regex ``f = a1 a2 … ah`` into ``h`` single-colour queries chained by
        dummy nodes; this returns the per-atom expressions in order.
        """
        return tuple(FRegex([a]) for a in self._atoms)

    # -- matching --------------------------------------------------------------

    def matches(self, colors: Sequence[str]) -> bool:
        """Return True if the colour string ``colors`` belongs to ``L(self)``.

        Uses a small dynamic program over (position, atom index); the input is
        a path's edge-colour sequence, so lengths are modest in practice.
        """
        word = list(colors)
        n_word = len(word)
        n_atoms = len(self._atoms)
        if n_word < n_atoms:
            return False
        max_len = self.max_length
        if max_len is not None and n_word > max_len:
            return False

        # reachable[j] = set of word positions consumed after matching j atoms
        reachable = {0}
        for j, item in enumerate(self._atoms):
            nxt = set()
            remaining_atoms = n_atoms - j - 1
            for start in reachable:
                # Extend the block greedily while colours agree.
                end = start
                while end < n_word and item.admits_color(word[end]):
                    end += 1
                    block_len = end - start
                    if not item.admits_length(block_len):
                        break
                    # Leave at least one edge for each remaining atom.
                    if n_word - end >= remaining_atoms:
                        nxt.add(end)
            reachable = nxt
            if not reachable:
                return False
        return n_word in reachable

    # -- dunder protocol -------------------------------------------------------

    def __iter__(self) -> Iterator[RegexAtom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __getitem__(self, index: int) -> RegexAtom:
        return self._atoms[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FRegex):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return ".".join(str(a) for a in self._atoms)

    def __repr__(self) -> str:
        return f"FRegex({str(self)!r})"


def concat(*expressions: FRegex) -> FRegex:
    """Concatenate several F-class expressions into one."""
    if not expressions:
        raise RegexSyntaxError("concat() requires at least one expression")
    atoms: list = []
    for expr in expressions:
        atoms.extend(expr.atoms)
    return FRegex(atoms)
