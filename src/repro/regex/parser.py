"""Parser for the textual form of F-class regular expressions.

The grammar accepted here mirrors the notation used in the paper and in the
rest of this library::

    expression := atom (separator atom)*
    atom       := color suffix?
    color      := identifier | "_"
    suffix     := "^" number | "^+" | "+" | "{" number "}" | "^<=" number | "<=" number
    separator  := whitespace | "." | ","

Examples
--------
>>> parse_fregex("fa^2.fn").num_atoms
2
>>> str(parse_fregex("ic^2 dc^+ ic^2"))
'ic^2.dc^+.ic^2'
>>> str(parse_fregex("fr+"))
'fr^+'
"""

from __future__ import annotations

import re
from typing import List

from repro.exceptions import RegexSyntaxError
from repro.regex.fclass import FRegex, RegexAtom

_ATOM_PATTERN = re.compile(
    r"""
    (?P<color>[A-Za-z][A-Za-z0-9_-]*|_)        # colour name or wildcard
    (?:
        \^\s*(?:<=\s*)?(?P<caret_num>\d+)      # ^k  or ^<=k
        | \^\s*\+                              # ^+
        | \{\s*(?P<brace_num>\d+)\s*\}         # {k}
        | <=\s*(?P<le_num>\d+)                 # <=k
        | (?P<bare_plus>\+)                    # c+
    )?
    """,
    re.VERBOSE,
)

_SEPARATOR = re.compile(r"[\s.,]+")


def parse_fregex(text: str) -> FRegex:
    """Parse ``text`` into an :class:`~repro.regex.fclass.FRegex`.

    Raises
    ------
    RegexSyntaxError
        If ``text`` is empty or contains tokens outside the F grammar.
    """
    if not isinstance(text, str):
        raise RegexSyntaxError(f"expected a string, got {type(text).__name__}")
    stripped = text.strip()
    if not stripped:
        raise RegexSyntaxError("empty regular expression")

    atoms: List[RegexAtom] = []
    pos = 0
    length = len(stripped)
    while pos < length:
        sep = _SEPARATOR.match(stripped, pos)
        if sep:
            pos = sep.end()
            if pos >= length:
                break
        match = _ATOM_PATTERN.match(stripped, pos)
        if not match or match.end() == pos:
            raise RegexSyntaxError(
                f"cannot parse F-class expression at position {pos}: {stripped!r}"
            )
        color = match.group("color")
        caret_num = match.group("caret_num")
        brace_num = match.group("brace_num")
        le_num = match.group("le_num")
        raw = match.group(0)
        if "^+" in raw.replace(" ", "") or match.group("bare_plus"):
            max_count: object = None
        elif caret_num is not None:
            max_count = int(caret_num)
        elif brace_num is not None:
            max_count = int(brace_num)
        elif le_num is not None:
            max_count = int(le_num)
        else:
            max_count = 1
        if isinstance(max_count, int) and max_count < 1:
            raise RegexSyntaxError(f"bound must be >= 1 in {raw!r}")
        atoms.append(RegexAtom(color, max_count))  # type: ignore[arg-type]
        pos = match.end()

    if not atoms:
        raise RegexSyntaxError(f"no atoms found in {text!r}")
    return FRegex(atoms)
