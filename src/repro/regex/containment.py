"""Language containment for F-class regular expressions.

Proposition 3.3 of the paper shows that for the restricted class ``F``,
containment ``L(f1) ⊆ L(f2)`` can be decided by a single linear scan of the
two expressions.  We provide:

* :func:`syntactic_contains` — the linear scan of the paper's proof.  It is
  *sound* (never claims containment that does not hold) and complete for the
  cases the proof enumerates (per-position colour compatibility plus bound
  comparison over runs of identically-coloured atoms).
* :func:`language_contains` — the decision used throughout the library.  It
  first runs the linear scan and, only when that scan cannot certify
  containment, falls back to an exact automaton-product check
  (:func:`repro.regex.nfa.nfa_language_contains`).  For query-sized
  expressions both paths are effectively instantaneous.
* :func:`language_equal` — mutual containment.

Decisions are memoised behind a bounded LRU: the containment tables of
``pq_contained_in``, ``minPQs`` and the semantic result cache re-decide the
same expression pairs over and over, and the answer for a pair never changes.
(The memo is a module-local ordered dict rather than
:class:`repro.matching.cache.LruCache` — importing the matching package from
here would cycle, since matching imports the regex layer at import time.)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.regex.fclass import FRegex
from repro.regex.nfa import nfa_language_contains
from repro.session.defaults import LANGUAGE_CONTAINMENT_CACHE_CAPACITY

_INF = float("inf")

_containment_memo: "OrderedDict[Tuple, bool]" = OrderedDict()
_containment_lock = threading.Lock()
_containment_counters = {"hits": 0, "misses": 0}


def language_containment_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the bounded ``language_contains`` memo."""
    with _containment_lock:
        return {
            "hits": _containment_counters["hits"],
            "misses": _containment_counters["misses"],
            "size": len(_containment_memo),
            "capacity": LANGUAGE_CONTAINMENT_CACHE_CAPACITY,
        }


def clear_language_containment_cache() -> None:
    """Drop every memoised containment decision (counters reset too)."""
    with _containment_lock:
        _containment_memo.clear()
        _containment_counters["hits"] = 0
        _containment_counters["misses"] = 0


def _bound(value: Optional[int]) -> float:
    """Numeric upper bound of an atom (``+`` is treated as infinity)."""
    return _INF if value is None else float(value)


def _runs(smaller: FRegex, larger: FRegex) -> List[Tuple[float, float]]:
    """Group consecutive positions whose (colour, colour) pair repeats.

    Within such a run the block boundaries are interchangeable, so the sound
    comparison is between the *sums* of the upper bounds (paper case (a));
    across runs the boundaries are forced and per-run comparison suffices.
    """
    runs: List[Tuple[float, float]] = []
    previous_key = None
    for small_atom, large_atom in zip(smaller.atoms, larger.atoms):
        key = (small_atom.color, large_atom.color)
        if key == previous_key:
            sum_small, sum_large = runs[-1]
            runs[-1] = (sum_small + _bound(small_atom.max_count),
                        sum_large + _bound(large_atom.max_count))
        else:
            runs.append((_bound(small_atom.max_count), _bound(large_atom.max_count)))
            previous_key = key
    return runs


def syntactic_contains(smaller: FRegex, larger: FRegex) -> bool:
    """Linear-time scan deciding ``L(smaller) ⊆ L(larger)`` (sound check).

    Requirements checked, following the proof of Proposition 3.3:

    1. both expressions have the same number of atoms;
    2. position by position, the colour of ``larger`` either equals the colour
       of ``smaller`` or is the wildcard;
    3. for every maximal run of positions with identical colour pairs, the sum
       of upper bounds in ``smaller`` does not exceed the sum in ``larger``
       (``+`` counts as infinity).
    """
    if smaller.num_atoms != larger.num_atoms:
        return False
    for small_atom, large_atom in zip(smaller.atoms, larger.atoms):
        if not large_atom.is_wildcard and large_atom.color != small_atom.color:
            return False
    for sum_small, sum_large in _runs(smaller, larger):
        if sum_small > sum_large:
            return False
    return True


def language_contains(
    smaller: FRegex, larger: FRegex, alphabet: Optional[Iterable[str]] = None
) -> bool:
    """Decide ``L(smaller) ⊆ L(larger)`` exactly (memoised).

    The fast syntactic scan is attempted first; a negative answer from the
    scan is re-checked with the exact automaton product, so the final answer
    is always exact.  Decisions are cached in a bounded LRU keyed on the two
    expressions (plus the alphabet, when one is supplied — wildcard
    containment can depend on it).
    """
    key = (
        smaller,
        larger,
        None if alphabet is None else frozenset(alphabet),
    )
    with _containment_lock:
        cached = _containment_memo.get(key)
        if cached is not None:
            _containment_memo.move_to_end(key)
            _containment_counters["hits"] += 1
            return cached
        _containment_counters["misses"] += 1
    if syntactic_contains(smaller, larger):
        answer = True
    else:
        answer = nfa_language_contains(
            smaller, larger, None if key[2] is None else key[2]
        )
    with _containment_lock:
        _containment_memo[key] = answer
        if len(_containment_memo) > LANGUAGE_CONTAINMENT_CACHE_CAPACITY:
            _containment_memo.popitem(last=False)
    return answer


def language_equal(
    first: FRegex, second: FRegex, alphabet: Optional[Iterable[str]] = None
) -> bool:
    """Decide ``L(first) = L(second)`` (mutual containment)."""
    return language_contains(first, second, alphabet) and language_contains(
        second, first, alphabet
    )
