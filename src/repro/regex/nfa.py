"""A tiny NFA engine used to cross-check F-class language operations.

The F subclass keeps containment linear-time (Proposition 3.3), but to be able
to *test* that syntactic check we also provide an exact decision procedure
based on the classical product construction: ``L(f1) ⊆ L(f2)`` iff no word of
``L(f1)`` is rejected by the determinised ``f2`` automaton.

The automata built here are small (one state per unit of every bounded atom,
plus a looping state per unbounded atom), so subset construction is cheap for
query-sized expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.regex.fclass import WILDCARD, FRegex

#: Symbol representing "any colour not mentioned in either expression"; adding
#: it to the working alphabet makes wildcard containment checks exact for every
#: possible data-graph alphabet extension.
OTHER_COLOR = "⁇other⁇"


@dataclass
class Nfa:
    """A non-deterministic finite automaton over colour symbols.

    Transitions are stored as ``{state: {symbol: {next_states}}}`` where the
    special symbol :data:`WILDCARD` matches any input colour.
    """

    num_states: int
    start: int
    accepting: Set[int]
    transitions: Dict[int, Dict[str, Set[int]]] = field(default_factory=dict)

    def add_transition(self, src: int, symbol: str, dst: int) -> None:
        self.transitions.setdefault(src, {}).setdefault(symbol, set()).add(dst)

    def step(self, states: Iterable[int], color: str) -> Set[int]:
        """Advance a state set on one input colour."""
        result: Set[int] = set()
        for state in states:
            table = self.transitions.get(state, {})
            result |= table.get(color, set())
            if color != WILDCARD:
                result |= table.get(WILDCARD, set())
        return result

    def accepts(self, word: Sequence[str]) -> bool:
        """Return True if ``word`` (a colour sequence) is in the language."""
        states = {self.start}
        for color in word:
            states = self.step(states, color)
            if not states:
                return False
        return bool(states & self.accepting)


def build_nfa(expr: FRegex) -> Nfa:
    """Compile an F-class expression into an :class:`Nfa`.

    Every bounded atom ``c^k`` becomes a chain of ``k`` states whose every
    intermediate state is a "may stop here" exit; an unbounded atom ``c^+``
    becomes a single state with a self loop.
    """
    # State 0 is the start state.  We build atom by atom, keeping the set of
    # states from which the *next* atom may begin (i.e. exits of the previous
    # block).
    nfa = Nfa(num_states=1, start=0, accepting=set())
    current_exits: List[int] = [0]

    for item in expr.atoms:
        symbol = item.color
        if item.max_count is None:
            loop_state = nfa.num_states
            nfa.num_states += 1
            for src in current_exits:
                nfa.add_transition(src, symbol, loop_state)
            nfa.add_transition(loop_state, symbol, loop_state)
            current_exits = [loop_state]
        else:
            chain: List[int] = []
            previous = None
            for _ in range(item.max_count):
                state = nfa.num_states
                nfa.num_states += 1
                if previous is None:
                    for src in current_exits:
                        nfa.add_transition(src, symbol, state)
                else:
                    nfa.add_transition(previous, symbol, state)
                chain.append(state)
                previous = state
            current_exits = chain
    nfa.accepting = set(current_exits)
    return nfa


class LazyDfa:
    """Incrementally determinised integer-state view of an :class:`Nfa`.

    The NFA-product evaluation over compiled graphs
    (:meth:`repro.matching.csr_engine.CsrEngine.nfa_product_pairs`) walks
    (graph node, automaton state) pairs.  Hashing ``frozenset`` state sets on
    every edge is wasteful, so this class interns each reachable subset into a
    dense integer id and memoises transitions per ``(state, symbol index)``
    as they are first taken.  Symbols are addressed by their index in the
    fixed ``alphabet`` sequence supplied at construction.
    """

    #: Transition target meaning "no NFA state survives this symbol".
    DEAD = -1

    #: The start state id (the singleton set of the NFA start state).
    start = 0

    __slots__ = ("alphabet", "_nfa", "_sets", "_ids", "_transitions", "_accepting")

    def __init__(self, nfa: Nfa, alphabet: Sequence[str]):
        self.alphabet = tuple(alphabet)
        self._nfa = nfa
        initial = frozenset({nfa.start})
        self._sets: List[FrozenSet[int]] = [initial]
        self._ids: Dict[FrozenSet[int], int] = {initial: 0}
        self._transitions: List[List[Optional[int]]] = [[None] * len(self.alphabet)]
        self._accepting: List[bool] = [bool(initial & nfa.accepting)]

    @property
    def num_states(self) -> int:
        """Number of subset states materialised so far."""
        return len(self._sets)

    def is_accepting(self, state: int) -> bool:
        return state >= 0 and self._accepting[state]

    def step(self, state: int, symbol_index: int) -> int:
        """Advance ``state`` on one symbol; returns :data:`DEAD` when empty.

        Stepping the :data:`DEAD` state stays dead, so calls can be chained
        without guarding in between.
        """
        if state < 0:
            return self.DEAD
        nxt = self._transitions[state][symbol_index]
        if nxt is None:
            target = frozenset(self._nfa.step(self._sets[state], self.alphabet[symbol_index]))
            if not target:
                nxt = self.DEAD
            else:
                nxt = self._ids.get(target)
                if nxt is None:
                    nxt = len(self._sets)
                    self._ids[target] = nxt
                    self._sets.append(target)
                    self._transitions.append([None] * len(self.alphabet))
                    self._accepting.append(bool(target & self._nfa.accepting))
            self._transitions[state][symbol_index] = nxt
        return nxt

    def accepts(self, word: Sequence[str]) -> bool:
        """Membership test via the memoised transitions (for cross-checking)."""
        symbol_index = {symbol: k for k, symbol in enumerate(self.alphabet)}
        state = self.start
        for color in word:
            index = symbol_index.get(color)
            if index is None:
                return False
            state = self.step(state, index)
            if state == self.DEAD:
                return False
        return self.is_accepting(state)


def _expand_alphabet(exprs: Iterable[FRegex]) -> List[str]:
    """Working alphabet: all concrete colours plus a fresh 'other' colour if
    any wildcard occurs (so wildcard semantics stay exact)."""
    colors: Set[str] = set()
    wildcard_seen = False
    for expr in exprs:
        colors |= set(expr.colors)
        wildcard_seen = wildcard_seen or expr.has_wildcard
    if wildcard_seen or not colors:
        colors.add(OTHER_COLOR)
    return sorted(colors)


def _determinize(nfa: Nfa, alphabet: Sequence[str]) -> Tuple[
    Dict[FrozenSet[int], Dict[str, FrozenSet[int]]],
    FrozenSet[int],
    Set[FrozenSet[int]],
]:
    """Subset construction restricted to ``alphabet``."""
    start = frozenset({nfa.start})
    table: Dict[FrozenSet[int], Dict[str, FrozenSet[int]]] = {}
    accepting: Set[FrozenSet[int]] = set()
    stack = [start]
    seen = {start}
    while stack:
        current = stack.pop()
        if current & nfa.accepting:
            accepting.add(current)
        row: Dict[str, FrozenSet[int]] = {}
        for color in alphabet:
            nxt = frozenset(nfa.step(current, color))
            row[color] = nxt
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
        table[current] = row
    return table, start, accepting


def nfa_language_contains(
    smaller: FRegex, larger: FRegex, alphabet: Optional[Iterable[str]] = None
) -> bool:
    """Exact decision of ``L(smaller) ⊆ L(larger)`` via product construction.

    Parameters
    ----------
    smaller, larger:
        The two F-class expressions.
    alphabet:
        Optional explicit alphabet.  When omitted the alphabet is the union of
        colours in both expressions, augmented with a fresh colour whenever a
        wildcard appears (this makes the answer independent of the actual
        data-graph alphabet).
    """
    if alphabet is None:
        working = _expand_alphabet([smaller, larger])
    else:
        working = sorted(set(alphabet) | set(_expand_alphabet([smaller, larger])))

    nfa_small = build_nfa(smaller)
    dfa_table, dfa_start, dfa_accepting = _determinize(build_nfa(larger), working)

    # Product search for a word accepted by `smaller` but rejected by `larger`.
    start = (frozenset({nfa_small.start}), dfa_start)
    stack = [start]
    seen = {start}
    while stack:
        small_states, dfa_state = stack.pop()
        if (small_states & nfa_small.accepting) and dfa_state not in dfa_accepting:
            return False
        for color in working:
            next_small = frozenset(nfa_small.step(small_states, color))
            if not next_small:
                continue
            next_dfa = dfa_table.get(dfa_state, {}).get(color, frozenset())
            key = (next_small, next_dfa)
            if key not in seen:
                seen.add(key)
                stack.append(key)
    return True
