"""F-class regular expressions.

The paper restricts edge constraints to the subclass ``F`` of regular
expressions::

    F ::= c | c^k | c^+ | F F

where ``c`` is an edge colour or the wildcard ``_``, ``c^k`` denotes *between
one and k* occurrences of ``c`` (the paper defines it as ``c ∪ c² ∪ … ∪ c^k``)
and ``c^+`` denotes one or more occurrences.

This subpackage provides

* :class:`~repro.regex.fclass.RegexAtom` and
  :class:`~repro.regex.fclass.FRegex` — the expression data model;
* :func:`~repro.regex.parser.parse_fregex` — a small parser for the textual
  syntax used throughout the library (``"fa^2.fn"``, ``"ic^2 dc^+ ic^2"``);
* :mod:`~repro.regex.containment` — the linear-time syntactic containment
  check of Proposition 3.3 plus an exact automaton-product check used to
  validate it;
* :mod:`~repro.regex.nfa` — a tiny NFA engine used only for cross-checking.
"""

from repro.regex.fclass import WILDCARD, FRegex, RegexAtom, atom, concat, plus
from repro.regex.parser import parse_fregex
from repro.regex.containment import (
    language_contains,
    language_equal,
    syntactic_contains,
)

__all__ = [
    "WILDCARD",
    "FRegex",
    "RegexAtom",
    "atom",
    "plus",
    "concat",
    "parse_fregex",
    "language_contains",
    "language_equal",
    "syntactic_contains",
]
