"""General regular expressions over edge colours (extension module).

The paper deliberately restricts edge constraints to the subclass ``F`` to
keep containment and evaluation in low polynomial time, and names support for
*general* regular expressions as future work (Section 7).  This module
provides that extension for users who need unions and Kleene closure and are
willing to pay the extra cost:

* :class:`GeneralRegex` — parsed from a conventional syntax with union ``|``,
  grouping ``( )``, Kleene star ``*``, plus ``+``, optional ``?`` and bounded
  repetition ``{k}`` over colour symbols (and the wildcard ``_``);
* compilation to the same :class:`~repro.regex.nfa.Nfa` machinery used to
  cross-check the F-class engine;
* conversion of F-class expressions into general ones
  (:meth:`GeneralRegex.from_fregex`), so both kinds of constraint can be mixed
  by callers.

Evaluation of reachability queries with general expressions lives in
:mod:`repro.matching.general_rq` (a product construction over graph nodes and
NFA states).  Containment of general expressions is *not* offered in
polynomial time — that is exactly the trade-off the paper's restriction
avoids (the problem is PSPACE-complete for general expressions).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import RegexSyntaxError
from repro.regex.fclass import WILDCARD, FRegex
from repro.regex.nfa import Nfa


class _Node:
    """Base class of the tiny regex syntax tree."""

    def add_to(self, nfa: Nfa, entries: List[int]) -> List[int]:
        """Wire this node into ``nfa`` starting from ``entries``; return exits."""
        raise NotImplementedError


class _Symbol(_Node):
    def __init__(self, color: str):
        self.color = color

    def add_to(self, nfa: Nfa, entries: List[int]) -> List[int]:
        state = nfa.num_states
        nfa.num_states += 1
        for entry in entries:
            nfa.add_transition(entry, self.color, state)
        return [state]


class _Concat(_Node):
    def __init__(self, parts: Sequence[_Node]):
        self.parts = list(parts)

    def add_to(self, nfa: Nfa, entries: List[int]) -> List[int]:
        current = list(entries)
        for part in self.parts:
            current = part.add_to(nfa, current)
        return current


class _Union(_Node):
    def __init__(self, branches: Sequence[_Node]):
        self.branches = list(branches)

    def add_to(self, nfa: Nfa, entries: List[int]) -> List[int]:
        exits: List[int] = []
        for branch in self.branches:
            exits.extend(branch.add_to(nfa, entries))
        return exits


class _Repeat(_Node):
    """``child*``, ``child+`` or ``child?`` (``minimum`` 0 or 1, unbounded flag)."""

    def __init__(self, child: _Node, minimum: int, unbounded: bool):
        self.child = child
        self.minimum = minimum
        self.unbounded = unbounded

    def add_to(self, nfa: Nfa, entries: List[int]) -> List[int]:
        exits = list(entries) if self.minimum == 0 else []
        current = list(entries)
        # One mandatory (or first optional) pass through the child.
        current = self.child.add_to(nfa, current)
        exits.extend(current)
        if self.unbounded:
            # Loop the child's exits back through another copy of the child;
            # because the child's structure is duplicated per entry set, a
            # single extra copy whose exits feed themselves suffices: we emulate
            # the loop by adding transitions from the copy's exits back into it.
            loop_exits = self.child.add_to(nfa, current)
            exits.extend(loop_exits)
            # Connect loop exits back to the loop entry symbols by merging the
            # transition rows: every transition leaving `current` is copied to
            # leave `loop_exits` as well, making the copy re-enterable.
            for exit_state in loop_exits:
                for entry_state in current:
                    for symbol, targets in nfa.transitions.get(entry_state, {}).items():
                        for target in targets:
                            nfa.add_transition(exit_state, symbol, target)
        return exits


class GeneralRegex:
    """A general regular expression over edge colours.

    Use :meth:`parse` to build one from text, :meth:`from_fregex` to convert a
    restricted F-class expression, :meth:`matches` to test a colour string and
    :meth:`to_nfa` to obtain the compiled automaton.
    """

    def __init__(self, root: _Node, text: str):
        self._root = root
        self._text = text
        self._nfa: Optional[Nfa] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "GeneralRegex":
        """Parse ``text`` (union ``|``, ``()``, ``*``, ``+``, ``?``, ``{k}``)."""
        parser = _Parser(text)
        root = parser.parse()
        return cls(root, text.strip())

    @classmethod
    def from_fregex(cls, expr: FRegex) -> "GeneralRegex":
        """Convert an F-class expression into an equivalent general one."""
        parts: List[_Node] = []
        for item in expr.atoms:
            symbol = _Symbol(item.color)
            if item.max_count is None:
                parts.append(_Repeat(symbol, minimum=1, unbounded=True))
            elif item.max_count == 1:
                parts.append(symbol)
            else:
                # c^k of the paper = between 1 and k occurrences.
                branches = [
                    _Concat([_Symbol(item.color)] * count)
                    for count in range(1, item.max_count + 1)
                ]
                parts.append(_Union(branches))
        return cls(_Concat(parts), str(expr))

    # -- compilation and matching ----------------------------------------------

    def to_nfa(self) -> Nfa:
        """Compile (and cache) the NFA for this expression."""
        if self._nfa is None:
            nfa = Nfa(num_states=1, start=0, accepting=set())
            exits = self._root.add_to(nfa, [0])
            nfa.accepting = set(exits)
            self._nfa = nfa
        return self._nfa

    def matches(self, colors: Sequence[str]) -> bool:
        """True when the colour string belongs to the language.

        Note that, unlike F-class expressions, a general expression may accept
        the empty string (e.g. ``a*``); reachability evaluation still requires
        a non-empty path, which :mod:`repro.matching.general_rq` enforces.
        """
        return self.to_nfa().accepts(list(colors))

    @property
    def accepts_empty(self) -> bool:
        """True when the empty colour string is in the language."""
        return self.matches([])

    def __str__(self) -> str:
        return self._text

    def __repr__(self) -> str:
        return f"GeneralRegex({self._text!r})"


class _Parser:
    """Recursive-descent parser for the general syntax."""

    def __init__(self, text: str):
        if not isinstance(text, str) or not text.strip():
            raise RegexSyntaxError("empty general regular expression")
        self.text = text
        self.pos = 0

    # grammar: union := concat ('|' concat)*
    #          concat := repeat+
    #          repeat := primary ('*' | '+' | '?' | '{k}')*
    #          primary := symbol | '(' union ')'

    def parse(self) -> _Node:
        node = self._union()
        self._skip_spaces()
        if self.pos != len(self.text):
            raise RegexSyntaxError(
                f"unexpected character {self.text[self.pos]!r} at position {self.pos}"
            )
        return node

    def _skip_spaces(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t.":
            self.pos += 1

    def _peek(self) -> str:
        self._skip_spaces()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _union(self) -> _Node:
        branches = [self._concat()]
        while self._peek() == "|":
            self.pos += 1
            branches.append(self._concat())
        return branches[0] if len(branches) == 1 else _Union(branches)

    def _concat(self) -> _Node:
        parts = []
        while True:
            char = self._peek()
            if not char or char in "|)":
                break
            parts.append(self._repeat())
        if not parts:
            raise RegexSyntaxError("empty alternative in general regular expression")
        return parts[0] if len(parts) == 1 else _Concat(parts)

    def _repeat(self) -> _Node:
        node = self._primary()
        while True:
            char = self._peek()
            if char == "*":
                self.pos += 1
                node = _Repeat(node, minimum=0, unbounded=True)
            elif char == "+":
                self.pos += 1
                node = _Repeat(node, minimum=1, unbounded=True)
            elif char == "?":
                self.pos += 1
                node = _Repeat(node, minimum=0, unbounded=False)
            elif char == "{":
                close = self.text.find("}", self.pos)
                if close < 0:
                    raise RegexSyntaxError("unterminated '{' repetition")
                count_text = self.text[self.pos + 1: close].strip()
                if not count_text.isdigit() or int(count_text) < 1:
                    raise RegexSyntaxError(f"invalid repetition count {count_text!r}")
                self.pos = close + 1
                node = _Concat([node] * int(count_text))
            else:
                return node

    def _primary(self) -> _Node:
        char = self._peek()
        if char == "(":
            self.pos += 1
            node = self._union()
            if self._peek() != ")":
                raise RegexSyntaxError("missing closing parenthesis")
            self.pos += 1
            return node
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-"
        ):
            self.pos += 1
        if self.pos == start:
            raise RegexSyntaxError(
                f"expected a colour symbol at position {self.pos} in {self.text!r}"
            )
        symbol = self.text[start:self.pos]
        return _Symbol(WILDCARD if symbol == "_" else symbol)
