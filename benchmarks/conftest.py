"""Shared fixtures for the benchmark suite.

Benchmarks use scaled-down graphs (a few hundred nodes) so that the whole
suite completes in minutes on a laptop while preserving the comparative shape
of the paper's figures (who wins, and roughly by how much).  EXPERIMENTS.md
documents the mapping from every benchmark to the corresponding figure and
how to run it at larger scale.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import generate_synthetic_graph
from repro.datasets.terrorism import generate_terrorism_graph
from repro.datasets.youtube import generate_youtube_graph
from repro.graph.csr import compiled_snapshot
from repro.graph.distance import build_distance_matrix
from repro.matching.paths import PathMatcher
from repro.query.generator import QueryGenerator


@pytest.fixture()
def engine_kwargs():
    """Warm, symmetric engine state for dict-vs-CSR evaluate_rq comparisons.

    Returns extra evaluate_rq keyword arguments: dict rows reuse one matcher
    across calls, csr rows the pre-compiled shared snapshot engine — so both
    engines are timed in steady state (the protocol run_rq_efficiency uses).
    """

    def make(graph, engine):
        if engine == "dict":
            return {"matcher": PathMatcher(graph)}
        compiled_snapshot(graph)  # one-off compile outside the timed region
        return {}

    return make


@pytest.fixture(scope="session")
def terrorism_graph():
    """Scaled-down GTD-like collaboration network (Exp-1 substrate)."""
    return generate_terrorism_graph(num_nodes=200, num_edges=450, seed=11)


@pytest.fixture(scope="session")
def terrorism_matrix(terrorism_graph):
    return build_distance_matrix(terrorism_graph)


@pytest.fixture(scope="session")
def youtube_graph():
    """Scaled-down YouTube-like video graph (Exp-2/3/4 substrate)."""
    return generate_youtube_graph(num_nodes=300, num_edges=1100, seed=7)


@pytest.fixture(scope="session")
def youtube_matrix(youtube_graph):
    return build_distance_matrix(youtube_graph)


@pytest.fixture(scope="session")
def synthetic_graph():
    """Scaled-down synthetic graph (Exp-5 substrate)."""
    return generate_synthetic_graph(num_nodes=300, num_edges=900, seed=51)


@pytest.fixture(scope="session")
def synthetic_matrix(synthetic_graph):
    return build_distance_matrix(synthetic_graph)


@pytest.fixture(scope="session")
def terrorism_queries(terrorism_graph):
    """Single-colour pattern queries of size (4,4), as in Fig. 9 (favouring SubIso)."""
    generator = QueryGenerator(terrorism_graph, seed=11)
    return generator.pattern_queries(3, num_nodes=4, num_edges=4, num_predicates=2, bound=2, max_colors=1)


@pytest.fixture(scope="session")
def youtube_queries(youtube_graph):
    """Default-parameter queries (|Vp|=6, |Ep|=8, pred=3, b=5, c≤2) of Fig. 11."""
    generator = QueryGenerator(youtube_graph, seed=41)
    return generator.pattern_queries(3, num_nodes=6, num_edges=8, num_predicates=3, bound=5, max_colors=2)
