"""Warm-cache PQ micro-benchmarks: dict engine vs compiled CSR engine.

The headline numbers of the CSR-backed PQ stack: JoinMatch, SplitMatch and
the incremental maintainer are timed on the YouTube fixture with one reusable
:class:`~repro.matching.paths.PathMatcher` per engine, warmed before timing —
the steady state of a server answering the same pattern workload (and of the
incremental maintainer's update stream).  Both engines are asserted to return
identical match sets; the ``engine`` entry in ``extra_info`` lets the CI JSON
artifact pair the rows up.

The queries are pre-filtered to have non-empty answers so the fixpoint and
the result-assembly sweep both do real work.
"""

from __future__ import annotations

import random

import pytest

from repro.matching.incremental import IncrementalPatternMatcher
from repro.matching.join_match import join_match
from repro.matching.paths import PathMatcher
from repro.matching.split_match import split_match
from repro.query.generator import QueryGenerator


@pytest.fixture(scope="session")
def pq_engine_queries(youtube_graph):
    """Non-empty pattern queries over the YouTube fixture (|Vp|=5, |Ep|=6)."""
    generator = QueryGenerator(youtube_graph, seed=41)
    candidates = generator.pattern_queries(
        12, num_nodes=5, num_edges=6, num_predicates=1, bound=5, max_colors=2
    )
    queries = [
        query
        for query in candidates
        if not join_match(query, youtube_graph, engine="dict").is_empty
    ][:3]
    assert queries, "fixture graph/query parameters must yield non-empty answers"
    return queries


def _warm_matcher(graph, engine, queries, algorithm):
    matcher = PathMatcher(graph, engine=engine)
    for query in queries:
        algorithm(query, graph, matcher=matcher)
    return matcher


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.benchmark(group="pq-engine-join")
def test_bench_join_match_warm(benchmark, youtube_graph, pq_engine_queries, engine):
    """Warm JoinMatch — the ISSUE's dict-vs-CSR headline PQ number."""
    matcher = _warm_matcher(youtube_graph, engine, pq_engine_queries, join_match)
    reference = [
        join_match(query, youtube_graph, engine="dict").as_frozen()
        for query in pq_engine_queries
    ]

    def run():
        return [
            join_match(query, youtube_graph, matcher=matcher)
            for query in pq_engine_queries
        ]

    results = benchmark(run)
    benchmark.extra_info["engine"] = engine
    assert [result.as_frozen() for result in results] == reference


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.benchmark(group="pq-engine-split")
def test_bench_split_match_warm(benchmark, youtube_graph, pq_engine_queries, engine):
    """Warm SplitMatch on both engines."""
    matcher = _warm_matcher(youtube_graph, engine, pq_engine_queries, split_match)
    reference = [
        split_match(query, youtube_graph, engine="dict").as_frozen()
        for query in pq_engine_queries
    ]

    def run():
        return [
            split_match(query, youtube_graph, matcher=matcher)
            for query in pq_engine_queries
        ]

    results = benchmark(run)
    benchmark.extra_info["engine"] = engine
    assert [result.as_frozen() for result in results] == reference


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.benchmark(group="pq-engine-incremental")
def test_bench_incremental_updates_warm(benchmark, youtube_graph, pq_engine_queries, engine):
    """A delete/re-insert stream through one warm incremental maintainer.

    Every round removes and re-adds the same 8 edges, so the graph (and the
    answer) is restored at the end of the round — rounds are independent,
    while the maintainer's version-aware caches stay warm throughout.
    """
    graph = youtube_graph.copy()
    maintainer = IncrementalPatternMatcher(pq_engine_queries[0], graph, engine=engine)
    # Sort before sampling: edges() iterates hash-ordered sets, and a
    # per-process workload would make the CI JSON trajectory incomparable.
    edges = random.Random(3).sample(sorted(graph.edges(), key=str), 8)

    def run():
        for edge in edges:
            maintainer.remove_edge(edge.source, edge.target, edge.color)
            maintainer.add_edge(edge.source, edge.target, edge.color)
        return maintainer.result

    result = benchmark(run)
    benchmark.extra_info["engine"] = engine
    expected = join_match(pq_engine_queries[0], graph, engine="dict")
    assert result.same_matches(expected)
