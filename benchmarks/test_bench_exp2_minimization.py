"""Exp-2 benchmarks — Fig. 10(a): evaluation time with and without minPQs.

Two series are timed on the YouTube-like graph: JoinMatchM on deliberately
redundant queries as generated, and JoinMatchM on the same queries after
``minimize_pattern_query``.  A third benchmark times the minimizer itself
(the paper notes minimization is instantaneous relative to evaluation).

Expected shape: the minimized series is at least as fast as the original one,
with the gap growing with query size.
"""

from __future__ import annotations

import pytest

from repro.experiments.exp2_minimization import make_redundant_query
from repro.matching.join_match import join_match
from repro.query.generator import QueryGenerator
from repro.query.minimization import minimize_pattern_query


@pytest.fixture(scope="module")
def redundant_queries(youtube_graph):
    generator = QueryGenerator(youtube_graph, seed=23)
    return [
        make_redundant_query(generator, num_nodes=8, num_edges=12, bound=3, max_colors=2)
        for _ in range(3)
    ]


@pytest.fixture(scope="module")
def minimized_queries(redundant_queries):
    return [minimize_pattern_query(query) for query in redundant_queries]


@pytest.mark.benchmark(group="exp2-fig10a-minimization")
def test_exp2_original_queries(benchmark, youtube_graph, youtube_matrix, redundant_queries):
    def run():
        return [
            join_match(query, youtube_graph, distance_matrix=youtube_matrix)
            for query in redundant_queries
        ]

    benchmark(run)
    benchmark.extra_info["figure"] = "10(a)"
    benchmark.extra_info["avg_query_size"] = sum(q.size for q in redundant_queries) / len(redundant_queries)


@pytest.mark.benchmark(group="exp2-fig10a-minimization")
def test_exp2_minimized_queries(benchmark, youtube_graph, youtube_matrix, redundant_queries, minimized_queries):
    def run():
        return [
            join_match(query, youtube_graph, distance_matrix=youtube_matrix)
            for query in minimized_queries
        ]

    results = benchmark(run)
    benchmark.extra_info["figure"] = "10(a)"
    benchmark.extra_info["avg_query_size"] = sum(q.size for q in minimized_queries) / len(minimized_queries)
    # Minimization must never grow a query.
    assert all(
        minimized.size <= original.size
        for minimized, original in zip(minimized_queries, redundant_queries)
    )
    assert len(results) == len(minimized_queries)


@pytest.mark.benchmark(group="exp2-fig10a-minimization")
def test_exp2_minimizer_cost(benchmark, redundant_queries):
    def run():
        return [minimize_pattern_query(query) for query in redundant_queries]

    minimized = benchmark(run)
    benchmark.extra_info["figure"] = "10(a)"
    assert len(minimized) == len(redundant_queries)
