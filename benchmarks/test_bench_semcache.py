"""Semantic-cache benchmarks: warm containment serving vs cold evaluation.

The semantic cache (PR 7) answers a query *contained* in a cached one by
filtering the cached pairs instead of walking the graph (Prop. 3.3).  These
benchmarks measure that trade on the YouTube fixture:

* ``semcache-cold`` — evaluating the tight query from scratch on a
  cache-disabled session (the price every request paid before the cache);
* ``semcache-warm-containment`` — the same query served by containment from
  a session primed with a broader query (fresh session per round, so every
  measured call really takes the containment path, not the promoted
  exact-hit one);
* ``test_semcache_containment_speedup`` — the acceptance gate: best-of-three
  timed passes asserting the warm containment hit is at least **5x** faster
  than cold evaluation, with the served pairs asserted identical.

CI runs this file on its own and uploads the timings as
``bench-semcache.json`` (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import time

import pytest

from repro.datasets.youtube import generate_youtube_graph
from repro.query.rq import ReachabilityQuery
from repro.session.session import GraphSession


@pytest.fixture(scope="module")
def semcache_graph():
    """A YouTube-shaped graph big enough for cold evaluation to hurt.

    The shared 300-node ``youtube_graph`` fixture is small enough that
    per-call planning overhead dilutes the cold/warm ratio; containment
    serving scales with the *cached answer* size while cold evaluation
    scales with the graph, so the margin under test needs a real graph.
    """
    return generate_youtube_graph(num_nodes=1500, num_edges=6000, seed=7)

#: The cached (broad) query and the contained (tight) query served from it.
#: Same regex — so containment reduces to the predicate filter, the fast
#: path the cache takes when the canonical regex keys coincide.  The broad
#: query shares the tight one's source predicate (containment comes from the
#: unconstrained target), keeping the cached answer — and so the filter cost
#: — proportional to the answer actually being narrowed, not the whole graph.
BROAD = ReachabilityQuery("cat = 'Comedy'", "", "fc.sr^+")
TIGHT = ReachabilityQuery("cat = 'Comedy'", "cat = 'Music'", "fc.sr^+")

SPEEDUP_FLOOR = 5.0
PASSES = 3


def _cold_session(graph):
    return GraphSession(graph, semantic_cache_capacity=0)


def _primed_session(graph):
    """A cached session already holding the broad query's answer."""
    session = GraphSession(graph)
    primed = session.execute(BROAD)
    assert primed.cache_decision == "evaluate"
    return session


@pytest.mark.benchmark(group="semcache-cold")
def test_bench_semcache_cold_evaluation(benchmark, semcache_graph):
    def setup():
        return (_cold_session(semcache_graph),), {}

    def cold(session):
        result = session.execute(TIGHT)
        assert result.cache_decision == "evaluate"
        return result

    result = benchmark.pedantic(cold, setup=setup, rounds=PASSES, iterations=1)
    benchmark.extra_info["pairs"] = len(result.answer.pairs)


@pytest.mark.benchmark(group="semcache-warm-containment")
def test_bench_semcache_warm_containment(benchmark, semcache_graph):
    def setup():
        return (_primed_session(semcache_graph),), {}

    def warm(session):
        result = session.execute(TIGHT)
        assert result.cache_decision == "cache-containment"
        return result

    result = benchmark.pedantic(warm, setup=setup, rounds=PASSES, iterations=1)
    benchmark.extra_info["pairs"] = len(result.answer.pairs)


def test_semcache_containment_speedup(semcache_graph):
    """Acceptance gate: warm containment hit >= 5x over cold evaluation.

    Best-of-three keeps a single scheduler stall on a noisy CI runner from
    pushing the (large) measured margin under the floor; every pass asserts
    the containment-served pairs equal the from-scratch ones.
    """
    best_cold = best_warm = float("inf")
    for _ in range(PASSES):
        cold_session = _cold_session(semcache_graph)
        started = time.perf_counter()
        cold = cold_session.execute(TIGHT)
        best_cold = min(best_cold, time.perf_counter() - started)
        assert cold.cache_decision == "evaluate"

        warm_session = _primed_session(semcache_graph)
        started = time.perf_counter()
        warm = warm_session.execute(TIGHT)
        best_warm = min(best_warm, time.perf_counter() - started)
        assert warm.cache_decision == "cache-containment"

        assert set(warm.answer.pairs) == set(cold.answer.pairs)

    speedup = best_cold / best_warm
    assert speedup >= SPEEDUP_FLOOR, (
        f"containment serving only {speedup:.2f}x over cold evaluation "
        f"({best_warm:.6f}s vs {best_cold:.6f}s)"
    )
