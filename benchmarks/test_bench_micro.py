"""Micro-benchmarks for the core building blocks.

Not tied to a specific paper figure; these track the cost of the primitives
the figure-level numbers are built from (regex operations, predicate
implication, distance-matrix construction, LRU cache traffic, containment and
minimization of queries).
"""

from __future__ import annotations

import pytest

from repro.graph.distance import build_distance_matrix
from repro.matching.cache import LruCache
from repro.matching.paths import PathMatcher
from repro.query.containment import pq_contained_in
from repro.query.generator import QueryGenerator
from repro.query.minimization import minimize_pattern_query
from repro.query.predicates import Predicate
from repro.regex.containment import language_contains
from repro.regex.parser import parse_fregex


@pytest.mark.benchmark(group="micro-regex")
def test_micro_parse_fregex(benchmark):
    benchmark(lambda: parse_fregex("fa^2.fn^+.sa^3._^2.fc"))


@pytest.mark.benchmark(group="micro-regex")
def test_micro_regex_matching(benchmark):
    expr = parse_fregex("fa^3.fn^+.sa^2")
    word = ["fa", "fa", "fn", "fn", "fn", "sa", "sa"]
    benchmark(lambda: expr.matches(word))


@pytest.mark.benchmark(group="micro-regex")
def test_micro_language_containment(benchmark):
    smaller = parse_fregex("fa^2.fn^2.sa")
    larger = parse_fregex("fa^4._^3.sa^+")
    benchmark(lambda: language_contains(smaller, larger))


@pytest.mark.benchmark(group="micro-predicates")
def test_micro_predicate_matching(benchmark):
    predicate = Predicate.parse("cat = 'Music' & age > 300 & view >= 1000 & com < 500")
    attributes = {"cat": "Music", "age": 500, "view": 5000, "com": 100}
    benchmark(lambda: predicate.matches(attributes))


@pytest.mark.benchmark(group="micro-predicates")
def test_micro_predicate_implication(benchmark):
    stronger = Predicate.parse("age > 300 & age < 800 & cat = 'Music'")
    weaker = Predicate.parse("age > 100 & cat = 'Music'")
    benchmark(lambda: stronger.implies(weaker))


@pytest.mark.benchmark(group="micro-graph")
def test_micro_distance_matrix_build(benchmark, synthetic_graph):
    benchmark.pedantic(build_distance_matrix, args=(synthetic_graph,), rounds=2, iterations=1)


@pytest.mark.benchmark(group="micro-graph")
def test_micro_path_matcher_frontier(benchmark, synthetic_graph, synthetic_matrix):
    matcher = PathMatcher(synthetic_graph, distance_matrix=synthetic_matrix)
    expr = parse_fregex("c0^2.c1^2")
    nodes = list(synthetic_graph.nodes())[:20]
    benchmark(lambda: [matcher.targets_from(node, expr) for node in nodes])


@pytest.mark.benchmark(group="micro-cache")
def test_micro_lru_cache_traffic(benchmark):
    def exercise():
        cache = LruCache(capacity=256)
        for index in range(2000):
            cache.put(index % 512, index)
            cache.get((index * 7) % 512)
        return cache

    cache = benchmark(exercise)
    assert len(cache) <= 256


@pytest.mark.benchmark(group="micro-query-analysis")
def test_micro_pq_containment(benchmark, synthetic_graph):
    generator = QueryGenerator(synthetic_graph, seed=5)
    first = generator.pattern_query(6, 8, num_predicates=2, bound=3)
    second = generator.pattern_query(6, 8, num_predicates=2, bound=3)
    benchmark(lambda: (pq_contained_in(first, second), pq_contained_in(second, first)))


@pytest.mark.benchmark(group="micro-query-analysis")
def test_micro_pq_minimization(benchmark, synthetic_graph):
    generator = QueryGenerator(synthetic_graph, seed=6)
    pattern = generator.pattern_query(8, 12, num_predicates=2, bound=3)
    result = benchmark(lambda: minimize_pattern_query(pattern))
    assert result.size <= pattern.size
