"""Micro-benchmarks for the core building blocks.

Not tied to a specific paper figure; these track the cost of the primitives
the figure-level numbers are built from (regex operations, predicate
implication, distance-matrix construction, LRU cache traffic, containment and
minimization of queries).
"""

from __future__ import annotations

import pytest

from repro.graph.csr import compile_graph
from repro.graph.distance import build_distance_matrix
from repro.matching.cache import LruCache
from repro.matching.csr_engine import CsrEngine
from repro.matching.paths import PathMatcher
from repro.matching.reachability import evaluate_rq
from repro.query.containment import pq_contained_in
from repro.query.generator import QueryGenerator
from repro.query.minimization import minimize_pattern_query
from repro.query.predicates import Predicate
from repro.query.rq import ReachabilityQuery
from repro.regex.containment import language_contains
from repro.regex.fclass import FRegex, RegexAtom
from repro.regex.parser import parse_fregex


@pytest.mark.benchmark(group="micro-regex")
def test_micro_parse_fregex(benchmark):
    benchmark(lambda: parse_fregex("fa^2.fn^+.sa^3._^2.fc"))


@pytest.mark.benchmark(group="micro-regex")
def test_micro_regex_matching(benchmark):
    expr = parse_fregex("fa^3.fn^+.sa^2")
    word = ["fa", "fa", "fn", "fn", "fn", "sa", "sa"]
    benchmark(lambda: expr.matches(word))


@pytest.mark.benchmark(group="micro-regex")
def test_micro_language_containment(benchmark):
    smaller = parse_fregex("fa^2.fn^2.sa")
    larger = parse_fregex("fa^4._^3.sa^+")
    benchmark(lambda: language_contains(smaller, larger))


@pytest.mark.benchmark(group="micro-predicates")
def test_micro_predicate_matching(benchmark):
    predicate = Predicate.parse("cat = 'Music' & age > 300 & view >= 1000 & com < 500")
    attributes = {"cat": "Music", "age": 500, "view": 5000, "com": 100}
    benchmark(lambda: predicate.matches(attributes))


@pytest.mark.benchmark(group="micro-predicates")
def test_micro_predicate_implication(benchmark):
    stronger = Predicate.parse("age > 300 & age < 800 & cat = 'Music'")
    weaker = Predicate.parse("age > 100 & cat = 'Music'")
    benchmark(lambda: stronger.implies(weaker))


@pytest.mark.benchmark(group="micro-graph")
def test_micro_distance_matrix_build(benchmark, synthetic_graph):
    benchmark.pedantic(build_distance_matrix, args=(synthetic_graph,), rounds=2, iterations=1)


@pytest.mark.benchmark(group="micro-graph")
def test_micro_path_matcher_frontier(benchmark, synthetic_graph, synthetic_matrix):
    matcher = PathMatcher(synthetic_graph, distance_matrix=synthetic_matrix)
    expr = parse_fregex("c0^2.c1^2")
    nodes = list(synthetic_graph.nodes())[:20]
    benchmark(lambda: [matcher.targets_from(node, expr) for node in nodes])


@pytest.mark.benchmark(group="micro-cache")
def test_micro_lru_cache_traffic(benchmark):
    def exercise():
        cache = LruCache(capacity=256)
        for index in range(2000):
            cache.put(index % 512, index)
            cache.get((index * 7) % 512)
        return cache

    cache = benchmark(exercise)
    assert len(cache) <= 256


@pytest.mark.benchmark(group="micro-csr-compile")
def test_micro_compile_graph(benchmark, youtube_graph):
    """One-off cost of freezing a graph into CSR arrays (amortised by `auto`)."""
    compiled = benchmark(compile_graph, youtube_graph)
    assert compiled.num_edges == youtube_graph.num_edges


def _frontier_atoms(graph):
    colors = sorted(graph.colors)
    return [RegexAtom(colors[0], 3), RegexAtom(colors[1], 3), RegexAtom("_", 2)]


@pytest.mark.benchmark(group="micro-engine-frontier")
def test_micro_frontier_expansion_dict(benchmark, youtube_graph):
    """Per-atom frontier expansion over the adjacency dicts (cold caches)."""
    atoms = _frontier_atoms(youtube_graph)
    nodes = list(youtube_graph.nodes())[:60]

    def run():
        matcher = PathMatcher(youtube_graph, cache_capacity=None, engine="dict")
        return [matcher.atom_targets(node, atom) for node in nodes for atom in atoms]

    frontiers = benchmark(run)
    assert len(frontiers) == len(nodes) * len(atoms)


@pytest.mark.benchmark(group="micro-engine-frontier")
def test_micro_frontier_expansion_csr(benchmark, youtube_graph):
    """Per-atom frontier expansion over compiled CSR arrays (cold caches)."""
    atoms = _frontier_atoms(youtube_graph)
    compiled = compile_graph(youtube_graph)
    indices = [compiled.node_index(node) for node in list(youtube_graph.nodes())[:60]]

    def run():
        engine = CsrEngine(compiled, cache_capacity=None)
        return [engine.atom_targets(index, atom) for index in indices for atom in atoms]

    frontiers = benchmark(run)
    assert len(frontiers) == len(indices) * len(atoms)


def _rq_queries(graph, count=4, bound=5, seed=31):
    generator = QueryGenerator(graph, seed=seed)
    colors = sorted(graph.colors)
    queries = []
    for index in range(count):
        atoms = [
            RegexAtom(colors[(index + offset) % len(colors)], bound) for offset in range(3)
        ]
        queries.append(
            ReachabilityQuery(
                source_predicate=generator.random_predicate(3),
                target_predicate=generator.random_predicate(3),
                regex=FRegex(atoms),
            )
        )
    return queries


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.benchmark(group="micro-engine-rq-bidirectional")
def test_micro_evaluate_rq_bidirectional(benchmark, youtube_graph, engine, engine_kwargs):
    """Full evaluate_rq (bidirectional) — the ISSUE's dict-vs-CSR headline number."""
    queries = _rq_queries(youtube_graph)
    kwargs = engine_kwargs(youtube_graph, engine)
    reference = [
        evaluate_rq(query, youtube_graph, method="bidirectional", engine="dict").pairs
        for query in queries
    ]

    def run():
        return [
            evaluate_rq(query, youtube_graph, method="bidirectional", engine=engine, **kwargs)
            for query in queries
        ]

    results = benchmark(run)
    benchmark.extra_info["engine"] = engine
    assert [result.pairs for result in results] == reference


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.benchmark(group="micro-engine-rq-bfs")
def test_micro_evaluate_rq_bfs(benchmark, youtube_graph, engine, engine_kwargs):
    """Full evaluate_rq (plain forward BFS) on both engines."""
    queries = _rq_queries(youtube_graph)
    kwargs = engine_kwargs(youtube_graph, engine)

    def run():
        return [
            evaluate_rq(query, youtube_graph, method="bfs", engine=engine, **kwargs)
            for query in queries
        ]

    results = benchmark(run)
    benchmark.extra_info["engine"] = engine
    assert all(result.engine == engine for result in results)


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.benchmark(group="micro-engine-rq-synthetic")
def test_micro_evaluate_rq_synthetic(benchmark, synthetic_graph, engine, engine_kwargs):
    """Dict-vs-CSR on the synthetic fixture (different degree distribution)."""
    queries = _rq_queries(synthetic_graph, count=3, bound=4, seed=7)
    kwargs = engine_kwargs(synthetic_graph, engine)

    def run():
        return [
            evaluate_rq(query, synthetic_graph, method="bidirectional", engine=engine, **kwargs)
            for query in queries
        ]

    results = benchmark(run)
    benchmark.extra_info["engine"] = engine
    assert len(results) == len(queries)


@pytest.mark.benchmark(group="micro-query-analysis")
def test_micro_pq_containment(benchmark, synthetic_graph):
    generator = QueryGenerator(synthetic_graph, seed=5)
    first = generator.pattern_query(6, 8, num_predicates=2, bound=3)
    second = generator.pattern_query(6, 8, num_predicates=2, bound=3)
    benchmark(lambda: (pq_contained_in(first, second), pq_contained_in(second, first)))


@pytest.mark.benchmark(group="micro-query-analysis")
def test_micro_pq_minimization(benchmark, synthetic_graph):
    generator = QueryGenerator(synthetic_graph, seed=6)
    pattern = generator.pattern_query(8, 12, num_predicates=2, bound=3)
    result = benchmark(lambda: minimize_pattern_query(pattern))
    assert result.size <= pattern.size
