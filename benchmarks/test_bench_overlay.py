"""Interleaved read/write benchmarks: the overlay-CSR store vs recompiling.

Before the storage layer, every mutation invalidated the compiled CSR
snapshot: an interleaved read/write stream on the ``csr`` engine paid a
recompile (donor layers notwithstanding) per update.  The
:class:`~repro.storage.overlay.OverlayCsrStore` absorbs mutations into
per-colour overlays instead — O(delta) per update, merged read-through
frontiers for the dirty colours, full flat-array speed for the clean ones.

* ``overlay-interleaved`` — one warm CSR matcher driving a mutate-then-query
  stream on the YouTube fixture, per store policy: the overlay's default
  compaction policy vs ``compaction_fraction=0.0`` (compact on every
  mutation — exactly the old recompile-per-update behaviour), plus the dict
  engine for context;
* ``test_interleaved_overlay_speedup`` — the acceptance gate: best-of-three
  timed passes asserting the overlay store is at least **3x** faster than
  recompile-per-mutation on the same stream, with every answer asserted
  identical to a from-scratch dict evaluation of the final graph.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.datasets.youtube import generate_youtube_graph
from repro.matching.paths import PathMatcher
from repro.matching.reachability import evaluate_rq
from repro.query.rq import ReachabilityQuery
from repro.regex.parser import parse_fregex


@pytest.fixture(scope="module")
def overlay_case():
    """(base graph, interleaved stream, probe expressions/queries/nodes).

    The stream alternates single-edge writes (removing present edges,
    re-inserting absent ones — the graph keeps drifting) with two kinds of
    reads after every write: point reachability probes from a fixed node
    sample and predicate-driven RQs (whose candidate scans the CSR engine
    memoises on the base snapshot) — the shape of interleaved read/write
    traffic the overlay store exists for.  Writes are confined to one
    relationship type (colour), as update streams typically are: the other
    colours stay clean, so their expansions keep running on the warm base
    arrays while the mutated colour reads through the overlay.
    """
    graph = generate_youtube_graph(num_nodes=1500, num_edges=6000, seed=7)
    rng = random.Random(13)
    colors = sorted(graph.colors)
    hot_color = colors[0]
    hot_edges = sorted(
        ((e.source, e.target, e.color) for e in graph.edges() if e.color == hot_color),
        key=str,
    )
    flips = rng.sample(hot_edges, 40)
    nodes = sorted(graph.nodes(), key=str)
    probes = rng.sample(nodes, 8)
    expressions = [
        # (expression, probe nodes): the hot colour reads through the
        # overlay, the clean expression runs on the warm base arrays.
        (parse_fregex(f"{hot_color}^2"), probes[:4]),
        (parse_fregex(f"{colors[1]}.{colors[2 % len(colors)]}"), probes),
    ]
    queries = [
        ReachabilityQuery("age < 60", "view >= 900000", f"{colors[1 % len(colors)]}^2"),
        ReachabilityQuery("len < 4", "com >= 800", f"{colors[2 % len(colors)]}^+"),
    ]
    return graph, flips, probes, expressions, queries


def run_stream(graph, matcher, flips, probes, expressions, queries):
    """Flip each stream edge, probing reads after every write."""
    answers = []
    for source, target, color in flips:
        if graph.has_edge(source, target, color):
            graph.remove_edge(source, target, color)
        else:
            graph.add_edge(source, target, color)
        for expr, expr_probes in expressions:
            for node in expr_probes:
                answers.append(matcher.targets_from(node, expr))
        for query in queries:
            answers.append(evaluate_rq(query, graph, matcher=matcher).pairs)
    return answers


def _overlay_graph(base):
    """A copy whose overlay store keeps the default compaction policy."""
    return base.copy()


def _recompile_graph(base):
    """A copy whose overlay store compacts on every mutation.

    ``compaction_fraction=0.0`` makes every sync fold the overlay into a
    fresh base — byte-identical answers, but the recompile-per-update cost
    profile the overlay store was built to remove.
    """
    graph = base.copy()
    store = graph.overlay_store()
    store.compaction_fraction = 0.0
    store.min_compaction_edges = 0
    return graph


_POLICIES = {
    "overlay": ("csr", _overlay_graph),
    "recompile": ("csr", _recompile_graph),
    "dict": ("dict", _overlay_graph),
}


@pytest.mark.parametrize("policy", list(_POLICIES))
@pytest.mark.benchmark(group="overlay-interleaved")
def test_bench_interleaved_stream(benchmark, overlay_case, policy):
    base, flips, probes, expressions, queries = overlay_case
    engine, prepare = _POLICIES[policy]
    graph = prepare(base)
    matcher = PathMatcher(graph, engine=engine)

    def run():
        return run_stream(graph, matcher, flips, probes, expressions, queries)

    benchmark(run)
    benchmark.extra_info["policy"] = policy


def test_interleaved_overlay_speedup(overlay_case):
    """Acceptance gate: overlay >= 3x over recompile-per-mutation.

    Timed best-of-three passes over the same interleaved stream; every
    overlay answer is asserted identical to the recompile policy's, and the
    final probes are checked against a from-scratch dict evaluation.  The
    measured margin is large; best-of-three keeps a single scheduler stall
    on a noisy CI runner from pushing it under the 3x floor.
    """
    base, flips, probes, expressions, queries = overlay_case
    best_overlay = best_recompile = float("inf")
    for _ in range(3):
        graph_overlay = _overlay_graph(base)
        graph_recompile = _recompile_graph(base)
        matcher_overlay = PathMatcher(graph_overlay, engine="csr")
        matcher_recompile = PathMatcher(graph_recompile, engine="csr")
        # Warm both engines outside the timed region (one-off base compile).
        matcher_overlay.targets_from(probes[0], expressions[0][0])
        matcher_recompile.targets_from(probes[0], expressions[0][0])

        started = time.perf_counter()
        overlay_answers = run_stream(
            graph_overlay, matcher_overlay, flips, probes, expressions, queries
        )
        overlay_seconds = time.perf_counter() - started

        started = time.perf_counter()
        recompile_answers = run_stream(
            graph_recompile, matcher_recompile, flips, probes, expressions, queries
        )
        recompile_seconds = time.perf_counter() - started

        assert overlay_answers == recompile_answers
        best_overlay = min(best_overlay, overlay_seconds)
        best_recompile = min(best_recompile, recompile_seconds)

    # The policies really did behave differently under the hood.
    overlay_store = graph_overlay.active_overlay_store
    recompile_store = graph_recompile.active_overlay_store
    assert recompile_store.compactions >= len(flips)
    assert overlay_store.compactions <= 2

    # Final-state parity against a from-scratch dict evaluation.
    fresh = PathMatcher(graph_overlay.copy(), engine="dict")
    for expr, expr_probes in expressions:
        for node in expr_probes:
            assert matcher_overlay.targets_from(node, expr) == fresh.targets_from(node, expr)

    speedup = best_recompile / best_overlay
    assert speedup >= 3.0, (
        f"overlay store only {speedup:.2f}x over recompile-per-mutation "
        f"({best_overlay:.4f}s vs {best_recompile:.4f}s)"
    )
