"""Prepared-query benchmarks: warm session execution vs cold free functions.

The session API's pitch is that preparing once and executing on warm state
(shared matchers, compiled snapshot, version-keyed result memo) beats
re-running a cold free function per request.  Two timed groups feed the CI
benchmark JSON artifact, and ``test_prepared_query_reuse_speedup`` is the
acceptance gate: on the youtube fixture, a warm ``PreparedQuery.execute()``
must be at least 2x faster per call than a cold free-function call (fresh
graph copy per call, so no shared snapshot or default-session state leaks
into the "cold" side).
"""

from __future__ import annotations

import time

import pytest

from repro.matching.join_match import join_match
from repro.matching.reachability import evaluate_rq
from repro.query.generator import QueryGenerator
from repro.session.session import GraphSession

#: Floor asserted by the acceptance gate (measured margin is far larger —
#: a warm execute on an unchanged graph is a result-memo hit).
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def session_case(youtube_graph):
    """(rq, pattern) with non-empty answers on the youtube fixture."""
    generator = QueryGenerator(youtube_graph, seed=17)
    rq = next(
        query
        for query in (
            generator.reachability_query(num_predicates=1, bound=4, max_colors=2)
            for _ in range(20)
        )
        if evaluate_rq(query, youtube_graph).size
    )
    pattern_generator = QueryGenerator(youtube_graph, seed=41)
    pattern = next(
        query
        for query in pattern_generator.pattern_queries(
            12, num_nodes=5, num_edges=6, num_predicates=1, bound=5, max_colors=2
        )
        if not join_match(query, youtube_graph).is_empty
    )
    return rq, pattern


@pytest.mark.benchmark(group="session-prepared-rq")
def test_bench_prepared_rq_warm(benchmark, youtube_graph, session_case):
    """Warm prepared RQ execution (result-memo hit on an unchanged graph)."""
    rq, _ = session_case
    session = GraphSession(youtube_graph)
    prepared = session.prepare(rq)
    reference = prepared.execute()  # warm the memo outside the timed region

    result = benchmark(prepared.execute)
    assert result.from_result_cache
    assert result.answer.pairs == reference.answer.pairs


@pytest.mark.benchmark(group="session-prepared-rq")
def test_bench_cold_free_function_rq(benchmark, youtube_graph, session_case):
    """The cold baseline: free-function call on a fresh graph copy."""
    rq, _ = session_case

    def run():
        return evaluate_rq(rq, youtube_graph.copy())

    result = benchmark(run)
    assert result.pairs == evaluate_rq(rq, youtube_graph).pairs


@pytest.mark.benchmark(group="session-prepared-pq")
def test_bench_prepared_pq_warm(benchmark, youtube_graph, session_case):
    """Warm prepared PQ execution through the session's planner."""
    _, pattern = session_case
    session = GraphSession(youtube_graph)
    prepared = session.prepare(pattern)
    reference = prepared.execute()

    result = benchmark(prepared.execute)
    assert result.from_result_cache
    assert result.answer.same_matches(reference.answer)


def test_prepared_query_reuse_speedup(youtube_graph, session_case):
    """Acceptance gate: warm prepared execution is >= 2x cold free calls.

    Per round, the prepared query executes on warm session state while the
    baseline calls ``evaluate_rq`` on a fresh graph copy (the copy itself is
    made outside the timed region; the cold call pays candidate scans and
    snapshot compilation, exactly what a per-request cold path pays).  The
    ratio is taken over best-of-three totals, mirroring the delta-maintenance
    gate, so one scheduler stall cannot sink it.
    """
    rq, _ = session_case
    rounds, calls = 3, 5
    best_warm = best_cold = float("inf")
    reference = evaluate_rq(rq, youtube_graph)

    for _ in range(rounds):
        session = GraphSession(youtube_graph)
        prepared = session.prepare(rq)
        warm_result = prepared.execute()  # first call pays evaluation
        warm_seconds = 0.0
        for _ in range(calls):
            started = time.perf_counter()
            warm_result = prepared.execute()
            warm_seconds += time.perf_counter() - started
        assert warm_result.from_result_cache
        assert warm_result.answer.pairs == reference.pairs

        cold_seconds = 0.0
        for _ in range(calls):
            copy = youtube_graph.copy()  # outside the timed region
            started = time.perf_counter()
            cold_result = evaluate_rq(rq, copy)
            cold_seconds += time.perf_counter() - started
            assert cold_result.pairs == reference.pairs
        best_warm = min(best_warm, warm_seconds)
        best_cold = min(best_cold, cold_seconds)

    speedup = best_cold / best_warm
    assert speedup >= MIN_SPEEDUP, (
        f"warm prepared execution only {speedup:.2f}x faster than cold free "
        f"calls ({best_warm:.6f}s vs {best_cold:.6f}s over {calls} calls)"
    )
