"""Ablation benchmarks for the design choices called out in DESIGN.md §4.

1. Distance matrix vs LRU-cache search inside PQ evaluation (the ``flag``
   parameter of JoinMatch/SplitMatch).
2. Reversed-topological SCC processing in JoinMatch vs the naive global
   fixpoint (same per-edge work, no ordering).
3. Query normalization (dummy-node decomposition of multi-atom constraints)
   on vs off.
4. RQ evaluation: bidirectional frontier expansion vs plain forward BFS.
"""

from __future__ import annotations

import pytest

from repro.matching.join_match import join_match
from repro.matching.naive import naive_match
from repro.matching.reachability import evaluate_rq
from repro.query.generator import QueryGenerator


@pytest.fixture(scope="module")
def ablation_queries(youtube_graph):
    generator = QueryGenerator(youtube_graph, seed=99)
    return generator.pattern_queries(3, num_nodes=6, num_edges=8, num_predicates=2, bound=4, max_colors=2)


@pytest.mark.benchmark(group="ablation-matrix-vs-cache")
def test_ablation_joinmatch_with_matrix(benchmark, youtube_graph, youtube_matrix, ablation_queries):
    benchmark(lambda: [join_match(q, youtube_graph, distance_matrix=youtube_matrix) for q in ablation_queries])


@pytest.mark.benchmark(group="ablation-matrix-vs-cache")
def test_ablation_joinmatch_with_cache(benchmark, youtube_graph, ablation_queries):
    benchmark(lambda: [join_match(q, youtube_graph) for q in ablation_queries])


@pytest.mark.benchmark(group="ablation-scc-vs-naive")
def test_ablation_scc_ordered_joinmatch(benchmark, youtube_graph, youtube_matrix, ablation_queries):
    results = benchmark(
        lambda: [join_match(q, youtube_graph, distance_matrix=youtube_matrix) for q in ablation_queries]
    )
    assert len(results) == len(ablation_queries)


@pytest.mark.benchmark(group="ablation-scc-vs-naive")
def test_ablation_naive_fixpoint(benchmark, youtube_graph, youtube_matrix, ablation_queries):
    results = benchmark(
        lambda: [naive_match(q, youtube_graph, distance_matrix=youtube_matrix) for q in ablation_queries]
    )
    reference = [join_match(q, youtube_graph, distance_matrix=youtube_matrix) for q in ablation_queries]
    assert all(result.same_matches(expected) for result, expected in zip(results, reference))


@pytest.mark.benchmark(group="ablation-normalization")
def test_ablation_normalization_on(benchmark, youtube_graph, youtube_matrix, ablation_queries):
    benchmark(
        lambda: [
            join_match(q, youtube_graph, distance_matrix=youtube_matrix, normalize=True)
            for q in ablation_queries
        ]
    )


@pytest.mark.benchmark(group="ablation-normalization")
def test_ablation_normalization_off(benchmark, youtube_graph, youtube_matrix, ablation_queries):
    results = benchmark(
        lambda: [
            join_match(q, youtube_graph, distance_matrix=youtube_matrix, normalize=False)
            for q in ablation_queries
        ]
    )
    reference = [
        join_match(q, youtube_graph, distance_matrix=youtube_matrix, normalize=True)
        for q in ablation_queries
    ]
    assert all(result.same_matches(expected) for result, expected in zip(results, reference))


@pytest.fixture(scope="module")
def ablation_rqs(youtube_graph):
    generator = QueryGenerator(youtube_graph, seed=77)
    return [generator.reachability_query(num_predicates=3, bound=4, max_colors=2) for _ in range(4)]


@pytest.mark.benchmark(group="ablation-rq-search")
def test_ablation_rq_bidirectional(benchmark, youtube_graph, ablation_rqs):
    benchmark(lambda: [evaluate_rq(q, youtube_graph, method="bidirectional") for q in ablation_rqs])


@pytest.mark.benchmark(group="ablation-rq-search")
def test_ablation_rq_forward_bfs(benchmark, youtube_graph, ablation_rqs):
    results = benchmark(lambda: [evaluate_rq(q, youtube_graph, method="bfs") for q in ablation_rqs])
    reference = [evaluate_rq(q, youtube_graph, method="bidirectional") for q in ablation_rqs]
    assert all(result.pairs == expected.pairs for result, expected in zip(results, reference))
