"""Kernel benchmarks: vectorised BFS vs the pure-python CSR loops.

PR 8 moved every CSR BFS hot path (per-atom expansion, the refinement
fixpoint's multi-source sweeps, the maintainer's affected-area closures)
onto :mod:`repro.kernels`, with a numpy backend gathering whole frontier
levels at once.  These benchmarks measure that trade on a YouTube-shaped
graph dense enough for frontier levels to be wide (the regime the paper's
datasets live in — avg degree ~8):

* ``kernels-python`` — the mixed BFS workload on the pure-python fallback
  backend (what every call paid before this PR, and still pays when numpy
  is absent);
* ``kernels-numpy`` — the identical workload on the numpy backend;
* ``test_kernel_speedup`` — the acceptance gate: best-of-three timed passes
  asserting the numpy kernels are at least **5x** faster, with the reached
  index sets asserted identical call by call.

CI runs this file on its own and uploads the timings as
``bench-kernels.json`` (see ``.github/workflows/ci.yml``); the tier-1 legs
run it with ``--benchmark-disable`` as a plain correctness test.  Without
numpy the whole module skips — the fallback path is covered by the
``no-numpy`` CI leg's tier-1 run instead.
"""

from __future__ import annotations

import random
import time

import pytest

pytest.importorskip("numpy")

from repro.datasets.youtube import generate_youtube_graph
from repro.graph.csr import ANY_COLOR, compile_graph
from repro.kernels import numpy_kernel, python_kernel

SPEEDUP_FLOOR = 5.0
PASSES = 3

#: Workload scale: single-source expansions, multi-source sweep width.
SINGLE_SOURCES = 16
SWEEP_SETS = 4
SWEEP_WIDTH = 750
CLOSURE_SEEDS = 40


@pytest.fixture(scope="module")
def kernel_graph():
    """A YouTube-shaped graph wide enough for vectorised levels to win.

    The shared 300-node ``youtube_graph`` fixture never grows a frontier
    past the vectorisation threshold, so it measures only the python tail.
    Average degree ~8 matches the regime where per-edge python overhead
    dominates a BFS — exactly what the numpy gather removes.
    """
    graph = generate_youtube_graph(num_nodes=6000, num_edges=48000, seed=7)
    return compile_graph(graph)


def _workload_calls(compiled):
    """The benchmark workload: (layer(s), starts, bound) per kernel call.

    A blend of the three hot shapes the engine actually runs: single-source
    wildcard expansions (RQ atoms, unbounded and depth-bounded), wide
    multi-source sweeps (the refinement fixpoint), and unbounded reverse
    walks plus two-colour closures (the incremental maintainer).
    """
    n = compiled.num_nodes
    rng = random.Random(11)
    any_fwd = compiled.layer(ANY_COLOR, reverse=False)
    any_rev = compiled.layer(ANY_COLOR, reverse=True)
    rev_colors = [compiled.layer(k, reverse=True) for k in range(2)]
    expands = []
    for _ in range(SINGLE_SOURCES):
        start = rng.randrange(n)
        expands.append((any_fwd, (start,), None))
        expands.append((any_fwd, (start,), 8))
    sweeps = [
        [rng.randrange(n) for _ in range(SWEEP_WIDTH)] for _ in range(SWEEP_SETS)
    ]
    for starts in sweeps:
        expands.append((any_fwd, starts, 6))
        expands.append((any_rev, starts, None))
    closures = [
        (rev_colors, [rng.randrange(n) for _ in range(CLOSURE_SEEDS)])
        for _ in range(SWEEP_SETS)
    ]
    return n, expands, closures


def _run_workload(kernel, n, expands, closures):
    """Raw kernel results, in call order (sets are built outside timing)."""
    results = []
    for layer, starts, bound in expands:
        results.append(kernel.expand_frontier(layer, n, starts, bound))
    for layers, starts in closures:
        results.append(kernel.closure_frontier(layers, n, starts))
    return results


def _as_sets(results):
    return [frozenset(reached) for reached in results]


@pytest.mark.benchmark(group="kernels-python")
def test_bench_kernels_python(benchmark, kernel_graph):
    n, expands, closures = _workload_calls(kernel_graph)
    results = benchmark.pedantic(
        _run_workload, args=(python_kernel, n, expands, closures), rounds=PASSES, iterations=1
    )
    benchmark.extra_info["reached_total"] = sum(len(r) for r in results)


@pytest.mark.benchmark(group="kernels-numpy")
def test_bench_kernels_numpy(benchmark, kernel_graph):
    n, expands, closures = _workload_calls(kernel_graph)
    results = benchmark.pedantic(
        _run_workload, args=(numpy_kernel, n, expands, closures), rounds=PASSES, iterations=1
    )
    benchmark.extra_info["reached_total"] = sum(len(r) for r in results)


def test_kernel_speedup(kernel_graph):
    """Acceptance gate: the numpy kernels >= 5x over the python loops.

    Best-of-three keeps a single scheduler stall on a noisy CI runner from
    pushing the measured margin under the floor; the reached sets are
    asserted identical between backends on every pass.
    """
    n, expands, closures = _workload_calls(kernel_graph)
    # Warm the per-layer array caches out of the measured region.
    baseline = _as_sets(_run_workload(numpy_kernel, n, expands, closures))

    best_python = best_numpy = float("inf")
    for _ in range(PASSES):
        started = time.perf_counter()
        python_results = _run_workload(python_kernel, n, expands, closures)
        best_python = min(best_python, time.perf_counter() - started)

        started = time.perf_counter()
        numpy_results = _run_workload(numpy_kernel, n, expands, closures)
        best_numpy = min(best_numpy, time.perf_counter() - started)

        assert _as_sets(python_results) == _as_sets(numpy_results) == baseline

    speedup = best_python / best_numpy
    assert speedup >= SPEEDUP_FLOOR, (
        f"numpy kernels only {speedup:.2f}x over the python loops "
        f"({best_numpy:.6f}s vs {best_python:.6f}s)"
    )
