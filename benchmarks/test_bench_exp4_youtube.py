"""Exp-4 benchmarks — Fig. 11(a)–(d): PQ evaluation on the YouTube-like graph.

Each figure varies one query parameter around the defaults (|Vp|=6, |Ep|=8,
|pred|=3, b=5) and plots the four algorithm variants plus the distance-matrix
build time.  The benchmarks below time the four variants at a low and a high
value of each parameter (the endpoints of the paper's x-axes, scaled down),
which is enough to recover the trend of each curve.

Expected shape: matrix variants faster than cache variants, JoinMatch faster
than SplitMatch, and stronger sensitivity to |Ep| and |pred| than to |Vp|.
"""

from __future__ import annotations

import pytest

from repro.graph.distance import build_distance_matrix
from repro.matching.join_match import join_match
from repro.matching.split_match import split_match
from repro.query.generator import QueryGenerator

#: (figure, parameter, low value, high value)
SWEEPS = [
    ("11(a)", "num_nodes", 4, 10),
    ("11(b)", "num_edges", 4, 10),
    ("11(c)", "num_predicates", 1, 4),
    ("11(d)", "bound", 1, 7),
]

ALGORITHMS = {
    "JoinMatchM": lambda query, graph, matrix: join_match(query, graph, distance_matrix=matrix),
    "JoinMatchC": lambda query, graph, matrix: join_match(query, graph),
    "SplitMatchM": lambda query, graph, matrix: split_match(query, graph, distance_matrix=matrix),
    "SplitMatchC": lambda query, graph, matrix: split_match(query, graph),
}

DEFAULTS = {"num_nodes": 6, "num_edges": 8, "num_predicates": 3, "bound": 5}


def _build_queries(graph, parameter, value, count=2, seed=41):
    generator = QueryGenerator(graph, seed=seed)
    settings = dict(DEFAULTS)
    settings[parameter] = value
    settings["num_edges"] = max(settings["num_edges"], settings["num_nodes"] - 1)
    return [
        generator.pattern_query(
            settings["num_nodes"],
            settings["num_edges"],
            settings["num_predicates"],
            settings["bound"],
            max_colors=2,
        )
        for _ in range(count)
    ]


@pytest.mark.parametrize("figure,parameter,low,high", SWEEPS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("level", ["low", "high"])
@pytest.mark.benchmark(group="exp4-fig11-pq-youtube")
def test_exp4_pq_sweep(benchmark, youtube_graph, youtube_matrix, figure, parameter, low, high, algorithm, level):
    value = low if level == "low" else high
    queries = _build_queries(youtube_graph, parameter, value)
    runner = ALGORITHMS[algorithm]

    def run():
        return [runner(query, youtube_graph, youtube_matrix) for query in queries]

    results = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = figure
    benchmark.extra_info[parameter] = value
    benchmark.extra_info["algorithm"] = algorithm
    assert len(results) == len(queries)


@pytest.mark.benchmark(group="exp4-fig11-m-index")
def test_exp4_matrix_index_cost(benchmark, youtube_graph):
    """The M-index series of Fig. 11: one-off distance-matrix construction."""
    matrix = benchmark.pedantic(build_distance_matrix, args=(youtube_graph,), rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "11(a)-(d)"
    assert matrix.memory_entries() > 0
