"""Update-stream benchmarks: delta maintenance vs recompute-per-update.

The headline numbers of the incremental maintainer on the YouTube fixture:

* ``incremental-stream-insert`` — an insert-heavy stream (edges removed from
  the fixture up front, then re-inserted one by one) per strategy
  (``delta`` vs ``recompute``) — the case the affected-area fast path
  exists for;
* ``incremental-stream-batch`` — the same logical updates delivered in
  chunks through ``apply_updates``;
* ``test_insert_stream_delta_speedup`` — the acceptance gate: one timed
  pass asserting the delta strategy is at least 3x faster than a full
  recompute per update *and* byte-identical to it after every insertion.

All benchmark rounds restore the graph they mutate, so rounds are
independent; parity with a from-scratch evaluation is asserted inside every
benchmark.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.matching.incremental import IncrementalPatternMatcher
from repro.matching.join_match import join_match
from repro.matching.paths import pattern_relevant_colors
from repro.query.generator import QueryGenerator


@pytest.fixture(scope="module")
def stream_case(youtube_graph):
    """(pattern, base graph without the stream edges, stream edges)."""
    generator = QueryGenerator(youtube_graph, seed=41)
    candidates = generator.pattern_queries(
        12, num_nodes=5, num_edges=6, num_predicates=1, bound=5, max_colors=2
    )
    pattern = next(
        query
        for query in candidates
        if not join_match(query, youtube_graph, engine="dict").is_empty
    )
    relevant = pattern_relevant_colors(pattern)
    eligible = sorted(
        (
            (edge.source, edge.target, edge.color)
            for edge in youtube_graph.edges()
            if relevant is None or edge.color in relevant
        ),
        key=str,
    )
    stream = random.Random(5).sample(eligible, 25)
    base = youtube_graph.copy()
    for source, target, color in stream:
        base.remove_edge(source, target, color)
    return pattern, base, stream


@pytest.mark.parametrize("strategy", ["delta", "recompute"])
@pytest.mark.benchmark(group="incremental-stream-insert")
def test_bench_insert_stream(benchmark, stream_case, strategy):
    """Insert-heavy stream through one warm maintainer per strategy.

    Each round inserts the stream edges and removes them again, restoring
    the graph; only the insertions run under the strategy being measured
    (the restoring deletions are shared bookkeeping).
    """
    pattern, base, stream = stream_case
    maintainer = IncrementalPatternMatcher(pattern, base.copy(), strategy=strategy)

    def run():
        for source, target, color in stream:
            maintainer.add_edge(source, target, color)
        result = maintainer.result
        for source, target, color in stream:
            maintainer.remove_edge(source, target, color)
        return result

    result = benchmark(run)
    benchmark.extra_info["strategy"] = strategy
    full = base.copy()
    for source, target, color in stream:
        full.add_edge(source, target, color)
    assert result.same_matches(join_match(pattern, full, engine="dict"))


@pytest.mark.benchmark(group="incremental-stream-batch")
def test_bench_batched_stream(benchmark, stream_case):
    """The same insertions coalesced through apply_updates chunks."""
    pattern, base, stream = stream_case
    maintainer = IncrementalPatternMatcher(pattern, base.copy())

    def run():
        for start in range(0, len(stream), 5):
            chunk = stream[start:start + 5]
            maintainer.apply_updates([("add", *edge) for edge in chunk])
        result = maintainer.result
        maintainer.apply_updates([("remove", *edge) for edge in stream])
        return result

    result = benchmark(run)
    full = base.copy()
    for source, target, color in stream:
        full.add_edge(source, target, color)
    assert result.same_matches(join_match(pattern, full, engine="dict"))


def test_insert_stream_delta_speedup(stream_case):
    """Acceptance gate: delta insertions are >= 3x faster than recompute.

    Timed passes per strategy over the same insert-heavy stream, with the
    delta maintainer's answer asserted identical to the recompute
    maintainer's after *every* insertion (and to a from-scratch evaluation
    at the end).  The measured margin is large (~10x on this fixture); the
    ratio is taken over best-of-three totals so a single scheduler stall on
    a noisy CI runner cannot push it under the 3x floor.
    """
    pattern, base, stream = stream_case
    best_delta = best_baseline = float("inf")
    for _ in range(3):
        delta = IncrementalPatternMatcher(pattern, base.copy(), strategy="delta")
        baseline = IncrementalPatternMatcher(pattern, base.copy(), strategy="recompute")
        delta_seconds = 0.0
        baseline_seconds = 0.0
        for source, target, color in stream:
            started = time.perf_counter()
            delta.add_edge(source, target, color)
            delta_seconds += time.perf_counter() - started
            started = time.perf_counter()
            baseline.add_edge(source, target, color)
            baseline_seconds += time.perf_counter() - started
            assert delta.result.same_matches(baseline.result), (source, target, color)
        best_delta = min(best_delta, delta_seconds)
        best_baseline = min(best_baseline, baseline_seconds)

    assert delta.result.same_matches(join_match(pattern, delta.graph, engine="dict"))
    stats = delta.statistics()
    assert stats["delta_refinements"] == len(stream)
    assert stats["full_recomputations"] == 1  # construction only
    speedup = best_baseline / best_delta
    assert speedup >= 3.0, (
        f"delta insert maintenance only {speedup:.2f}x faster than recompute "
        f"({best_delta:.4f}s vs {best_baseline:.4f}s)"
    )
