"""Exp-3 benchmarks — Fig. 10(b): RQ evaluation strategies.

For constraints with 1 and 3 distinct colours (``c1^b … ci^b`` with b = 5),
three strategies are timed on the YouTube-like graph: the pre-computed
distance matrix (DM), bidirectional search with the LRU cache (biBFS), and
plain forward search (BFS).  A separate benchmark times building the distance
matrix itself, the cost DM amortises across queries.

Expected shape: DM < biBFS < BFS per query, with the gap widening for more
colours; building the matrix dominates if only a handful of queries are asked.

The two search strategies are additionally parametrised over the evaluation
engine (``dict`` vs the compiled CSR engine), which tracks the dict-vs-CSR
speedup per PR next to the paper's own comparison.
"""

from __future__ import annotations

import pytest

from repro.graph.distance import build_distance_matrix
from repro.matching.reachability import evaluate_rq
from repro.query.generator import QueryGenerator
from repro.query.rq import ReachabilityQuery
from repro.regex.fclass import FRegex, RegexAtom


def _queries(graph, num_colors, count=3, bound=5, num_predicates=3, seed=31):
    generator = QueryGenerator(graph, seed=seed)
    colors = sorted(graph.colors)
    queries = []
    for index in range(count):
        atoms = [
            RegexAtom(colors[(index + offset) % len(colors)], bound)
            for offset in range(num_colors)
        ]
        queries.append(
            ReachabilityQuery(
                source_predicate=generator.random_predicate(num_predicates),
                target_predicate=generator.random_predicate(num_predicates),
                regex=FRegex(atoms),
            )
        )
    return queries


@pytest.mark.parametrize("num_colors", [1, 3])
@pytest.mark.benchmark(group="exp3-fig10b-rq")
def test_exp3_distance_matrix(benchmark, youtube_graph, youtube_matrix, num_colors):
    queries = _queries(youtube_graph, num_colors)

    def run():
        return [
            evaluate_rq(query, youtube_graph, distance_matrix=youtube_matrix, method="matrix")
            for query in queries
        ]

    results = benchmark(run)
    benchmark.extra_info["figure"] = "10(b)"
    benchmark.extra_info["num_colors"] = num_colors
    assert all(result.method == "matrix" for result in results)


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.parametrize("num_colors", [1, 3])
@pytest.mark.benchmark(group="exp3-fig10b-rq")
def test_exp3_bidirectional(benchmark, youtube_graph, youtube_matrix, num_colors, engine, engine_kwargs):
    queries = _queries(youtube_graph, num_colors)
    kwargs = engine_kwargs(youtube_graph, engine)
    reference = [
        evaluate_rq(query, youtube_graph, distance_matrix=youtube_matrix, method="matrix")
        for query in queries
    ]

    def run():
        return [
            evaluate_rq(query, youtube_graph, method="bidirectional", engine=engine, **kwargs)
            for query in queries
        ]

    results = benchmark(run)
    benchmark.extra_info["figure"] = "10(b)"
    benchmark.extra_info["num_colors"] = num_colors
    benchmark.extra_info["engine"] = engine
    assert all(result.pairs == expected.pairs for result, expected in zip(results, reference))


@pytest.mark.parametrize("engine", ["dict", "csr"])
@pytest.mark.parametrize("num_colors", [1, 3])
@pytest.mark.benchmark(group="exp3-fig10b-rq")
def test_exp3_plain_bfs(benchmark, youtube_graph, num_colors, engine, engine_kwargs):
    queries = _queries(youtube_graph, num_colors)
    kwargs = engine_kwargs(youtube_graph, engine)

    def run():
        return [
            evaluate_rq(query, youtube_graph, method="bfs", engine=engine, **kwargs)
            for query in queries
        ]

    results = benchmark(run)
    benchmark.extra_info["figure"] = "10(b)"
    benchmark.extra_info["num_colors"] = num_colors
    benchmark.extra_info["engine"] = engine
    assert len(results) == len(queries)


@pytest.mark.benchmark(group="exp3-fig10b-rq-index")
def test_exp3_matrix_build_cost(benchmark, youtube_graph):
    """The M-index cost that the DM strategy amortises over many queries."""
    matrix = benchmark(build_distance_matrix, youtube_graph)
    benchmark.extra_info["figure"] = "10(b)"
    assert matrix.memory_entries() > 0
