"""Serving-layer benchmark: concurrent pinned readers against a live writer.

Boots a real :class:`~repro.service.GraphService` on an ephemeral loopback
port and drives it with the load generator: 8 reader threads issuing the
probe mix over HTTP while a writer thread streams update batches.  Every
reader answer is verified post hoc against an update-log replay (the
snapshot-isolation gate), and the throughput/latency numbers land in the
benchmark ``extra_info`` so CI uploads them alongside the timings.

The CI workflow runs the same burst end-to-end through the CLI
(``repro serve --load-burst``) and uploads ``bench-serve.json``.
"""

from __future__ import annotations

import pytest

from repro.matching.general_rq import GeneralReachabilityQuery
from repro.query.pq import PatternQuery
from repro.query.rq import ReachabilityQuery
from repro.service import GraphService, ServiceConfig, build_update_plan, run_load
from repro.session.session import GraphSession

READERS = 8
DURATION = 1.5


def _probes():
    pattern = PatternQuery(name="serve-probe")
    pattern.add_node("A", "cat = 'Comedy'")
    pattern.add_node("B", "cat = 'Music'")
    pattern.add_edge("A", "B", "fc.sr^+")
    return [
        ("rq", ReachabilityQuery("cat = 'Comedy'", "cat = 'Music'", "fc.sr^+")),
        ("rq", ReachabilityQuery("cat = 'Music'", "cat = 'Comedy'", "sr^+")),
        ("general_rq", GeneralReachabilityQuery("cat = 'Comedy'", "", "(fc|sr)*.sr")),
        ("pq", pattern),
    ]


@pytest.mark.benchmark(group="serve-load-burst")
def test_bench_serve_load_burst(benchmark, youtube_graph):
    """One verified load burst; wall time is the benchmark measurement."""
    graph = youtube_graph.copy()  # the writer mutates the served graph
    initial = graph.copy()
    plan = build_update_plan(initial, batches=16, batch_size=4, seed=7)
    service = GraphService(GraphSession(graph), ServiceConfig(port=0))
    handle = service.run_in_thread()
    try:
        host, port = handle.address

        def burst():
            return run_load(
                host,
                port,
                initial,
                _probes(),
                readers=READERS,
                duration=DURATION,
                update_plan=plan,
                seed=7,
            )

        report = benchmark.pedantic(burst, rounds=1, iterations=1)
    finally:
        handle.shutdown()

    # The acceptance gate: every answer any reader saw matches a from-scratch
    # evaluation of the graph at the version the service pinned for it.
    assert report["ok"], report["failures"]
    assert report["readers"] == READERS
    assert report["requests"] > 0
    assert report["updates_applied"] > 0
    assert report["distinct_versions_observed"] >= 2

    benchmark.extra_info["qps"] = report["qps"]
    benchmark.extra_info["latency_p50_ms"] = report["latency_p50_ms"]
    benchmark.extra_info["latency_p99_ms"] = report["latency_p99_ms"]
    benchmark.extra_info["requests"] = report["requests"]
    benchmark.extra_info["distinct_versions_observed"] = report[
        "distinct_versions_observed"
    ]
