"""Partition benchmarks: shard pruning on a streamed million-edge graph.

PR 10 adds :class:`~repro.storage.partition.PartitionedStore`: vertex
ranges compile to private per-shard CSR blocks and frontier waves run
shard-at-a-time.  On one core the win is *pruning*, not parallelism — each
wave pays the kernel's Θ(n_shard) frontier bitmaps only in the shards it
actually touches, so region-confined queries on a sparse graph skip most
of the node space.  These benchmarks measure exactly that regime: a
scale-free edge stream whose id locality keeps contiguous seed windows
inside one range shard, and multi-source bounded expansions over those
windows:

* ``partition-1shard`` / ``partition-4shard`` — the identical workload on
  a single-shard and a four-shard build of the same stream;
* ``test_partition_speedup`` — the acceptance gate: best-of-three timed
  passes asserting four shards are at least **2x** faster than one, with
  the reached node sets asserted identical pass by pass.

Two scales share this file.  The default (tier-1) scale streams ~65k edges
so plain ``pytest`` stays fast; it checks shard-count *parity* only —
timing floors at that size would measure noise.  Setting
``REPRO_BENCH_PARTITION=full`` switches to the 2^20-edge stream the CI
benchmark job runs (see ``.github/workflows/ci.yml``, which uploads the
timings as ``bench-partition.json``) and arms the 2x gate.  Without numpy
the whole module skips — the python kernels run the same orchestration but
not the vectorised scans the gate measures.
"""

from __future__ import annotations

import os
import random
import time

import pytest

pytest.importorskip("numpy")

from repro.datasets.synthetic import scale_free_stream
from repro.storage.partition import PartitionedStore

FULL = os.environ.get("REPRO_BENCH_PARTITION", "").strip().lower() == "full"

SPEEDUP_FLOOR = 2.0
PASSES = 3

#: Sparse on purpose: the node space dwarfs the edge count, so frontiers
#: stay narrow and the Θ(n_shard) bitmap term dominates each wave.
NUM_NODES = 4_194_304 if FULL else 131_072
NUM_EDGES = 1_048_576 if FULL else 65_536
QUERIES = 8
WIDTH = 256
BOUND = 3
SEED = 11


def _build_store(shards: int) -> PartitionedStore:
    """One store per shard count, streamed from the same deterministic edges."""
    return PartitionedStore.from_edges(
        scale_free_stream(NUM_NODES, NUM_EDGES, seed=SEED), shards=shards
    )


@pytest.fixture(scope="module")
def partition_stores():
    """Single-shard and four-shard builds of the same streamed graph."""
    stores = {shards: _build_store(shards) for shards in (1, 4)}
    yield stores
    for store in stores.values():
        store.close()


@pytest.fixture(scope="module")
def partition_workload():
    """Contiguous seed windows: the region-confined shape range shards prune."""
    rng = random.Random(5)
    return [
        tuple(range(base, base + WIDTH))
        for base in (rng.randrange(NUM_NODES - WIDTH) for _ in range(QUERIES))
    ]


def _run_workload(store, workload):
    return [store.frontier(starts, None, BOUND) for starts in workload]


@pytest.mark.benchmark(group="partition-1shard")
def test_bench_partition_one_shard(benchmark, partition_stores, partition_workload):
    results = benchmark.pedantic(
        _run_workload,
        args=(partition_stores[1], partition_workload),
        rounds=PASSES,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["reached_total"] = sum(len(r) for r in results)
    benchmark.extra_info["edges"] = partition_stores[1].num_edges


@pytest.mark.benchmark(group="partition-4shard")
def test_bench_partition_four_shards(benchmark, partition_stores, partition_workload):
    results = benchmark.pedantic(
        _run_workload,
        args=(partition_stores[4], partition_workload),
        rounds=PASSES,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["reached_total"] = sum(len(r) for r in results)
    benchmark.extra_info["boundary_nodes"] = (
        partition_stores[4].overlay_stats()["boundary_nodes"]
    )


def test_partition_speedup(partition_stores, partition_workload):
    """Acceptance gate: four shards >= 2x over one on the full-scale stream.

    Best-of-three keeps one scheduler stall on a noisy runner from pushing
    the margin under the floor; the answers are asserted identical between
    the two builds on every pass.  At the quick (tier-1) scale only the
    parity assertion runs — the timing floor is armed by
    ``REPRO_BENCH_PARTITION=full``.
    """
    one, four = partition_stores[1], partition_stores[4]
    # Warm the shards' lazy numpy views out of the measured region.
    baseline = _run_workload(one, partition_workload)
    assert _run_workload(four, partition_workload) == baseline

    best_one = best_four = float("inf")
    for _ in range(PASSES):
        started = time.perf_counter()
        results_one = _run_workload(one, partition_workload)
        best_one = min(best_one, time.perf_counter() - started)

        started = time.perf_counter()
        results_four = _run_workload(four, partition_workload)
        best_four = min(best_four, time.perf_counter() - started)

        assert results_one == results_four == baseline

    if FULL:
        speedup = best_one / best_four
        assert speedup >= SPEEDUP_FLOOR, (
            f"4 shards only {speedup:.2f}x over 1 shard "
            f"({best_four:.6f}s vs {best_one:.6f}s on {one.num_edges} edges)"
        )
