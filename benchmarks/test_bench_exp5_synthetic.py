"""Exp-5 benchmarks — Fig. 12(a)–(f): scalability on synthetic graphs.

* Fig. 12(a)/(b): PQ evaluation time while the data graph grows in nodes /
  edges (all four algorithm variants).
* Fig. 12(c)/(d)/(e): PQ evaluation time while the query grows in nodes,
  edges or predicates (JoinMatchM / SplitMatchC shown — the fastest matrix
  variant and the fully index-free variant).
* Fig. 12(f): SubIso vs SplitMatchC on small graphs, with the number of
  matches found attached as ``extra_info``.

Expected shape: smooth growth with graph size, stronger sensitivity to |Ep|
and |pred| than |Vp|, and SubIso orders of magnitude slower than SplitMatchC
while finding no more matches.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import generate_synthetic_graph
from repro.graph.distance import build_distance_matrix
from repro.matching.join_match import join_match
from repro.matching.split_match import split_match
from repro.matching.subgraph_iso import subgraph_isomorphism_match
from repro.query.generator import QueryGenerator

QUERY_DEFAULTS = dict(num_nodes=4, num_edges=5, num_predicates=2, bound=3, max_colors=2)


def _graph_and_queries(num_nodes, num_edges, seed=51, query_overrides=None, count=2):
    graph = generate_synthetic_graph(num_nodes, num_edges, seed=seed)
    generator = QueryGenerator(graph, seed=seed)
    settings = dict(QUERY_DEFAULTS)
    if query_overrides:
        settings.update(query_overrides)
    settings["num_edges"] = max(settings["num_edges"], settings["num_nodes"] - 1)
    queries = [
        generator.pattern_query(
            settings["num_nodes"],
            settings["num_edges"],
            settings["num_predicates"],
            settings["bound"],
            settings["max_colors"],
        )
        for _ in range(count)
    ]
    return graph, queries


# --------------------------------------------------------------------------
# Fig. 12(a)/(b): growing data graphs
# --------------------------------------------------------------------------

@pytest.mark.parametrize("num_nodes", [150, 300])
@pytest.mark.parametrize("variant", ["JoinMatchM", "JoinMatchC", "SplitMatchM", "SplitMatchC"])
@pytest.mark.benchmark(group="exp5-fig12a-vary-V")
def test_exp5_vary_graph_nodes(benchmark, num_nodes, variant):
    graph, queries = _graph_and_queries(num_nodes, 600)
    matrix = build_distance_matrix(graph) if variant.endswith("M") else None
    algorithm = join_match if variant.startswith("Join") else split_match

    def run():
        return [algorithm(query, graph, distance_matrix=matrix) for query in queries]

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "12(a)"
    benchmark.extra_info["graph_nodes"] = num_nodes


@pytest.mark.parametrize("num_edges", [450, 900])
@pytest.mark.parametrize("variant", ["JoinMatchM", "JoinMatchC", "SplitMatchM", "SplitMatchC"])
@pytest.mark.benchmark(group="exp5-fig12b-vary-E")
def test_exp5_vary_graph_edges(benchmark, num_edges, variant):
    graph, queries = _graph_and_queries(300, num_edges)
    matrix = build_distance_matrix(graph) if variant.endswith("M") else None
    algorithm = join_match if variant.startswith("Join") else split_match

    def run():
        return [algorithm(query, graph, distance_matrix=matrix) for query in queries]

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "12(b)"
    benchmark.extra_info["graph_edges"] = num_edges


# --------------------------------------------------------------------------
# Fig. 12(c)/(d)/(e): growing queries
# --------------------------------------------------------------------------

QUERY_SWEEPS = [
    ("12(c)", "num_nodes", 4, 8),
    ("12(d)", "num_edges", 5, 10),
    ("12(e)", "num_predicates", 2, 4),
]


@pytest.mark.parametrize("figure,parameter,low,high", QUERY_SWEEPS)
@pytest.mark.parametrize("level", ["low", "high"])
@pytest.mark.parametrize("variant", ["JoinMatchM", "SplitMatchC"])
@pytest.mark.benchmark(group="exp5-fig12cde-vary-query")
def test_exp5_vary_query_parameter(
    benchmark, synthetic_graph, synthetic_matrix, figure, parameter, low, high, level, variant
):
    value = low if level == "low" else high
    generator = QueryGenerator(synthetic_graph, seed=53)
    settings = dict(QUERY_DEFAULTS)
    settings[parameter] = value
    settings["num_edges"] = max(settings["num_edges"], settings["num_nodes"] - 1)
    queries = [
        generator.pattern_query(
            settings["num_nodes"],
            settings["num_edges"],
            settings["num_predicates"],
            settings["bound"],
            settings["max_colors"],
        )
        for _ in range(2)
    ]
    matrix = synthetic_matrix if variant.endswith("M") else None
    algorithm = join_match if variant.startswith("Join") else split_match

    def run():
        return [algorithm(query, synthetic_graph, distance_matrix=matrix) for query in queries]

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = figure
    benchmark.extra_info[parameter] = value
    benchmark.extra_info["algorithm"] = variant


# --------------------------------------------------------------------------
# Fig. 12(f): SubIso vs SplitMatchC on small graphs
# --------------------------------------------------------------------------

@pytest.mark.parametrize("graph_size", [(50, 100), (150, 300)])
@pytest.mark.benchmark(group="exp5-fig12f-subiso")
def test_exp5_splitmatch_vs_subiso_splitmatch(benchmark, graph_size):
    num_nodes, num_edges = graph_size
    graph, queries = _graph_and_queries(
        num_nodes, num_edges, seed=54,
        query_overrides=dict(num_nodes=6, num_edges=9, max_colors=1, bound=5),
    )

    def run():
        return [split_match(query, graph) for query in queries]

    results = benchmark(run)
    benchmark.extra_info["figure"] = "12(f)"
    benchmark.extra_info["graph"] = f"({num_nodes},{num_edges})"
    benchmark.extra_info["matches"] = sum(result.node_pair_count() for result in results)


@pytest.mark.parametrize("graph_size", [(50, 100), (150, 300)])
@pytest.mark.benchmark(group="exp5-fig12f-subiso")
def test_exp5_splitmatch_vs_subiso_subiso(benchmark, graph_size):
    num_nodes, num_edges = graph_size
    graph, queries = _graph_and_queries(
        num_nodes, num_edges, seed=54,
        query_overrides=dict(num_nodes=6, num_edges=9, max_colors=1, bound=5),
    )

    def run():
        return [
            subgraph_isomorphism_match(query, graph, max_states=500_000) for query in queries
        ]

    results = benchmark(run)
    split_results = [split_match(query, graph) for query in queries]
    iso_matches = sum(
        sum(len(nodes) for nodes in result.node_matches().values()) for result in results
    )
    split_matches = sum(result.node_pair_count() for result in split_results)
    benchmark.extra_info["figure"] = "12(f)"
    benchmark.extra_info["graph"] = f"({num_nodes},{num_edges})"
    benchmark.extra_info["matches"] = iso_matches
    # The simulation-based semantics never reports fewer matches than SubIso.
    assert split_matches >= iso_matches
