"""Exp-1 benchmarks — Fig. 9(b) and Fig. 9(c).

Fig. 9(c) plots the elapsed time of JoinMatchM, SplitMatchM, MatchM and SubIso
on the terrorism network for single-colour queries; the benchmarks below time
exactly those four algorithms on the shared query workload.  Fig. 9(b) is the
F-measure of each approach against the PQ-semantics ground truth; it is not a
timing figure, so it is attached to the SubIso/Match benchmarks as
``extra_info`` (inspect it with ``--benchmark-verbose`` or in the JSON output).

Expected shape (matching the paper): JoinMatchM ≲ SplitMatchM < MatchM ≪ SubIso
in time, and F-measure(PQ) = 1 ≥ F-measure(Match) ≥ F-measure(SubIso).
"""

from __future__ import annotations

import pytest

from repro.matching.bounded_simulation import bounded_simulation_match
from repro.matching.join_match import join_match
from repro.matching.split_match import split_match
from repro.matching.subgraph_iso import subgraph_isomorphism_match
from repro.metrics.fmeasure import compute_f_measure


def _truth(queries, graph, matrix):
    return [join_match(query, graph, distance_matrix=matrix) for query in queries]


@pytest.mark.benchmark(group="exp1-fig9c-time")
def test_exp1_joinmatch_m(benchmark, terrorism_graph, terrorism_matrix, terrorism_queries):
    def run():
        return [
            join_match(query, terrorism_graph, distance_matrix=terrorism_matrix)
            for query in terrorism_queries
        ]

    results = benchmark(run)
    benchmark.extra_info["figure"] = "9(c)"
    benchmark.extra_info["f_measure"] = 1.0
    assert all(not result.is_empty or result.size == 0 for result in results)


@pytest.mark.benchmark(group="exp1-fig9c-time")
def test_exp1_splitmatch_m(benchmark, terrorism_graph, terrorism_matrix, terrorism_queries):
    def run():
        return [
            split_match(query, terrorism_graph, distance_matrix=terrorism_matrix)
            for query in terrorism_queries
        ]

    results = benchmark(run)
    benchmark.extra_info["figure"] = "9(c)"
    truth = _truth(terrorism_queries, terrorism_graph, terrorism_matrix)
    assert all(r.same_matches(t) for r, t in zip(results, truth))


@pytest.mark.benchmark(group="exp1-fig9c-time")
def test_exp1_match_baseline(benchmark, terrorism_graph, terrorism_matrix, terrorism_queries):
    def run():
        return [
            bounded_simulation_match(query, terrorism_graph, distance_matrix=terrorism_matrix)
            for query in terrorism_queries
        ]

    results = benchmark(run)
    truth = _truth(terrorism_queries, terrorism_graph, terrorism_matrix)
    scores = [
        compute_f_measure(result.node_matches, reference.node_matches).f_measure
        for result, reference in zip(results, truth)
    ]
    benchmark.extra_info["figure"] = "9(b)/9(c)"
    benchmark.extra_info["f_measure"] = round(sum(scores) / len(scores), 4)
    # Match has full recall, so its F-measure can only drop through precision.
    assert all(score <= 1.0 for score in scores)


@pytest.mark.benchmark(group="exp1-fig9c-time")
def test_exp1_subiso_baseline(benchmark, terrorism_graph, terrorism_matrix, terrorism_queries):
    def run():
        return [
            subgraph_isomorphism_match(query, terrorism_graph, max_states=200_000)
            for query in terrorism_queries
        ]

    results = benchmark(run)
    truth = _truth(terrorism_queries, terrorism_graph, terrorism_matrix)
    scores = [
        compute_f_measure(result.node_matches(), reference.node_matches).f_measure
        for result, reference in zip(results, truth)
    ]
    benchmark.extra_info["figure"] = "9(b)/9(c)"
    benchmark.extra_info["f_measure"] = round(sum(scores) / len(scores), 4)
    assert all(score <= 1.0 for score in scores)
